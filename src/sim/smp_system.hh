/**
 * @file
 * The bus-based SMP system: N processor nodes (L1 + write-back buffer +
 * subblocked MOESI L2 + JETTY filter bank) on an atomic snoopy bus with a
 * memory behind it. Trace-driven: per-processor reference streams are
 * interleaved round-robin, one reference per turn (a WWT2-style quantum).
 *
 * Filters are passive observers (DESIGN.md): each node carries a
 * FilterBank whose configurations all see every snoop with ground truth,
 * so one run scores every candidate JETTY and the energy accountant
 * evaluates them afterwards.
 */

#ifndef JETTY_SIM_SMP_SYSTEM_HH
#define JETTY_SIM_SMP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/bus_txn.hh"
#include "core/filter_bank.hh"
#include "mem/cache_config.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "mem/writeback_buffer.hh"
#include "sim/interconnect.hh"
#include "sim/observer.hh"
#include "sim/sim_stats.hh"
#include "sim/worker_pool.hh"
#include "trace/trace_source.hh"

namespace jetty::sim
{

/** Configuration of the whole SMP. Defaults are the paper's base 4-way
 *  SPARC-like system. */
struct SmpConfig
{
    unsigned nprocs = 4;
    mem::L1Config l1;
    mem::L2Config l2;
    unsigned wbEntries = 8;
    unsigned physAddrBits = 40;

    /** JETTY configurations every node evaluates in parallel. */
    std::vector<std::string> filterSpecs;

    /** Panic when a filter would have broken coherence (keep on). */
    bool checkSafety = true;

    /**
     * References pulled per TraceSource::nextBatch call in the delivery
     * path (1 = scalar per-reference pulls). Purely a transport knob:
     * the round-robin interleaving — one reference per processor per
     * sweep — and therefore every simulated number is bit-identical for
     * every value.
     */
    unsigned batchRefs = 256;

    /**
     * Logical snoop buses of the address-interleaved split interconnect
     * (sim/interconnect.hh). 1 is the classic single shared bus and is
     * bit-identical to the pre-interconnect simulator in every number.
     * Any value leaves the coherence outcome (caches, write-back
     * buffers, architectural statistics) untouched — all transactions
     * for one unit serialize on its home bus — and only changes the
     * per-bus occupancy stats, the latency model's contention input,
     * and the bus-major order in which deferred filter banks replay
     * their observations (per-filter coverage may shift for
     * snoopBuses > 1; safety never does).
     */
    unsigned snoopBuses = 1;

    /**
     * Total threads (including the simulation thread) the chunk-end
     * filter replay of run() may use. 1 keeps the replay sequential.
     * The replay parallelizes over independent (node, filter) tasks —
     * each task replays its bank's bus queues bus-major, exactly as the
     * sequential flush does, and the safety-panic decision is taken
     * after the join in deterministic (node, filter) order — so every
     * simulated number is bit-identical for every value, at any bus
     * count; like batchRefs this is purely a wall-clock knob.
     */
    unsigned replayThreads = 1;

    /** Derive the filters' address-space facts. */
    filter::AddressMap addressMap() const;
};

/** The simulated machine. */
class SmpSystem
{
  public:
    explicit SmpSystem(const SmpConfig &cfg);

    /** Attach one reference stream per processor (size must match). */
    void attachSources(std::vector<trace::TraceSourcePtr> sources);

    /**
     * One round-robin sweep: each processor with a live stream issues one
     * reference. @return false once every stream is exhausted.
     *
     * References are pulled from the sources in batches of
     * SmpConfig::batchRefs and replayed one per sweep, so a step()-driven
     * simulation is bit-identical to run() and to any batch size.
     */
    bool step();

    /**
     * Run until all streams are exhausted. This is the hot path: batched
     * delivery plus an inlined L1-hit fast path, with the full
     * processorAccess() route for everything else. Produces exactly the
     * per-reference behaviour of repeated step() calls.
     */
    void run();

    /** Drive one reference directly (unit/integration tests). */
    void processorAccess(ProcId p, AccessType type, Addr addr);

    /** Gathered statistics. */
    const SimStats &stats() const { return stats_; }

    /** A node's filter bank (coverage stats per configuration). */
    const filter::FilterBank &bank(ProcId p) const;

    /** Coverage stats of filter @p filterIdx merged over all nodes. */
    filter::FilterStats mergedFilterStats(std::size_t filterIdx) const;

    /** L2 traffic merged over all nodes (energy denominator). */
    energy::L2Traffic mergedTraffic() const;

    /** Direct cache access for white-box tests. */
    mem::L2Cache &l2(ProcId p) { return *nodes_[p]->l2; }
    mem::L1Cache &l1(ProcId p) { return *nodes_[p]->l1; }
    mem::WritebackBuffer &wb(ProcId p) { return *nodes_[p]->wb; }
    const mem::L2Cache &l2(ProcId p) const { return *nodes_[p]->l2; }
    const mem::L1Cache &l1(ProcId p) const { return *nodes_[p]->l1; }
    const mem::WritebackBuffer &wb(ProcId p) const { return *nodes_[p]->wb; }

    /** The configuration the system was built with. */
    const SmpConfig &config() const { return cfg_; }

    /**
     * Attach (or detach with nullptr) a passive observer of references,
     * snoops, and bus transactions (sim/observer.hh). While an observer
     * is attached run() routes every reference through the fully
     * instrumented per-reference path instead of the inlined L1 fast
     * path — the two paths are bit-identical, so the observed simulation
     * is exactly the unobserved one. With no observer the hot loop pays
     * nothing.
     */
    void setObserver(SimObserver *obs) { observer_ = obs; }

    /** Attach a per-(filter, snoop) observer to every node's bank.
     *  While one is attached run() takes the fully instrumented
     *  per-reference route (like setObserver), so every verdict is
     *  emitted immediately and in stream order. */
    void setFilterProbeObserver(filter::FilterProbeObserver *obs);

    /** The snoop interconnect (bus count and routing). */
    const Interconnect &interconnect() const { return interconnect_; }

  private:
    struct Node
    {
        std::unique_ptr<mem::L1Cache> l1;
        std::unique_ptr<mem::L2Cache> l2;
        std::unique_ptr<mem::WritebackBuffer> wb;
        std::unique_ptr<filter::FilterBank> bank;
        trace::TraceSourcePtr source;
        bool sourceDone = true;

        /** Delivery batch prefetched from the source (cfg.batchRefs). */
        std::vector<trace::TraceRecord> batch;
        std::size_t batchPos = 0;  //!< next undelivered record
        std::size_t batchLen = 0;  //!< valid records in batch
    };

    /** Refill @p node's delivery batch; marks the source done (and
     *  returns false) when the stream is exhausted. */
    bool refillBatch(Node &node);

    /** Chunk-end flush of every node's deferred filter queues — over
     *  the replay pool when cfg_.replayThreads > 1, else sequential.
     *  Bit-identical either way (see SmpConfig::replayThreads). */
    void flushAllBanks();

    /**
     * Routing facts of one prepared miss (Stage 3 of the batched hot
     * loop): the unit's home bus and its write-back Bloom-signature
     * bit, precomputed per miss run (the signature bits through the
     * simd::oneHotHash kernel) instead of per broadcast. Both depend
     * only on the address, so a prepared entry can never go stale.
     */
    struct MissPrep
    {
        unsigned bus = 0;
        std::uint64_t sigBit = 0;
    };

    /** Place a transaction on its home snoop bus: snoop all other
     *  nodes, count remote copies, transition their states. While the
     *  banks are deferred (the batched run() hot loop) the per-node
     *  filter observation is queued instead of walked — both routes make
     *  identical coherence state changes. @p prep, when given, carries
     *  the precomputed routing facts for @p unitAddr. */
    coherence::BusResponse
    broadcast(ProcId requester, coherence::BusOp op, Addr unitAddr,
              const MissPrep *prep = nullptr);

    /** Handle a local L2 miss for @p addr: WB reclaim or bus fetch plus
     *  L2 (and victim) bookkeeping. Returns the unit's final L2 state. */
    coherence::State
    fetchUnit(ProcId p, Addr unitAddr, bool forWrite,
              const MissPrep *prep = nullptr);

    /** The L1-miss tail of processorAccess(): L2 lookup/upgrade/fetch,
     *  L1 fill, dirty-victim writeback, observer. Entered directly by
     *  the batched hot loop once the pre-classifier reported a miss, so
     *  the L1 is not probed twice; @p unit is the aligned address.
     *  Every bus transaction of one missTail call targets @p unit, so
     *  @p prep (when given) covers the whole tail. */
    void missTail(ProcId p, AccessType type, Addr addr, Addr unit,
                  const MissPrep *prep = nullptr);

    /**
     * Per-live-processor scratch of one hot-loop chunk (reused across
     * chunks, so the arrays stop allocating after warm-up). Rows index
     * the processor's references within the chunk, one per round-robin
     * sweep: unit/write are decoded up front; outcome/waySel hold the
     * Stage-1 classification window [0, clsTo) taken at L1 generation
     * gen; sigBit holds the Stage-3 prepared signature bits [0, prepTo).
     */
    struct Lane
    {
        std::vector<Addr> unit;             //!< [row] unit-aligned address
        std::vector<std::uint8_t> write;    //!< [row] 1 = write
        std::vector<std::uint8_t> outcome;  //!< [row] L1FastOutcome
        std::vector<std::uint8_t> waySel;   //!< [row] classify verdicts
        /** [row] WB signature bits, batch-hashed at classify time for
         *  every window that contains at least one Miss verdict — so a
         *  cached Miss verdict always has its signature bit ready. */
        std::vector<std::uint64_t> sigBit;
        /** The lane's slice of its node's trace batch for this chunk.
         *  The fused walk classifies straight out of it instead of
         *  paying a decode pass into the arrays above. */
        const trace::TraceRecord *rec = nullptr;
        mem::L1Cache *l1 = nullptr;  //!< the lane's L1, devirtualized
        std::size_t clsTo = 0;   //!< rows [0, clsTo) hold verdicts
        std::uint64_t gen = 0;   //!< L1 generation of the verdicts
        /** Adaptive classification window: each extension that the
         *  Stage-1 scan consumes whole doubles it (amortizing the
         *  kernel-call overhead over hit runs), and a generation bump
         *  drops it back to the seed so miss-dense phases never
         *  classify far past the next invalidation. Any policy here is
         *  bit-identical — windows only cache verdicts. */
        std::size_t win = 0;
    };

    /** Stage 1: first row in [from, limit) whose classified verdict is
     *  non-Hit, or @p limit when every row classifies Hit. Extends the
     *  lane's classification window on demand (never past @p rounds)
     *  and re-takes it when the L1 generation moved. */
    std::size_t firstNonHit(Lane &ls, std::size_t from, std::size_t limit,
                            std::size_t rounds);

    /** Stage 3 setup, run per freshly classified window [from, to):
     *  when the window holds any Miss verdict, batch-hash the rows'
     *  write-back signature bits (simd::oneHotHash) and prefetch every
     *  node's L2 set line for each Miss row — the drain's remote snoop
     *  probes are the miss path's coldest loads, and classify time is
     *  far enough ahead of the drain for the prefetches to land.
     *  Address-only facts, so prepared rows can never go stale. */
    void prepareMissRows(Lane &ls, std::size_t from, std::size_t to);

    /** Make room in the WB, then insert a victim. */
    void pushVictim(ProcId p, const mem::L2Victim &victim);

    /** Invalidate the L1 line backing @p unitAddr (inclusion). */
    void enforceInclusion(ProcId p, Addr unitAddr);

    SmpConfig cfg_;
    std::vector<std::unique_ptr<Node>> nodes_;
    Interconnect interconnect_;
    std::vector<mem::L2Victim> victimScratch_;  //!< fetchUnit reuse
    SimStats stats_;
    SimObserver *observer_ = nullptr;
    bool probeObserved_ = false;  //!< any bank has a probe observer
    bool deferActive_ = false;    //!< run() hot loop: banks are queueing

    /** One parallel replay task: a bank and the filter it replays. */
    struct ReplayTask
    {
        filter::FilterBank *bank;
        std::size_t filterIdx;
    };
    std::unique_ptr<WorkerPool> replayPool_;  //!< replayThreads > 1 only
    std::vector<ReplayTask> replayTasks_;     //!< flushAllBanks scratch
    std::vector<filter::FilterBank *> preparedBanks_;

    std::vector<Lane> lanes_;  //!< [live index] hot-loop chunk scratch
    /** Chunk-local per-bus occupancy deltas: while the hot loop runs,
     *  broadcast() accumulates here and run() folds into SimStats
     *  bus-major at each chunk boundary — commutative sums, so the
     *  fold is bit-identical to immediate accounting. */
    std::vector<BusStats> chunkBus_;
    std::vector<std::uint64_t> chunkBusProbes_;
};

} // namespace jetty::sim

#endif // JETTY_SIM_SMP_SYSTEM_HH
