#include "util/atomic_file.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace jetty::util
{

namespace
{

bool (*g_commitFailureHook)(const std::string &) = nullptr;

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

void
setAtomicCommitFailureHook(bool (*hook)(const std::string &))
{
    g_commitFailureHook = hook;
}

AtomicFile::AtomicFile(const std::string &path) : path_(path)
{
    // mkstemp in the same directory: rename(2) is atomic only within a
    // filesystem, and the temp name keeps concurrent publishers of the
    // same final path from trampling each other's bytes.
    std::string templ = path + ".tmpXXXXXX";
    std::string buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0) {
        err_ = "cannot create temp file beside '" + path +
               "': " + errnoText();
        return;
    }
    temp_.assign(buf.data());
    // mkstemp creates 0600; published artifacts follow the usual rules.
    ::fchmod(fd, 0644);
    f_ = ::fdopen(fd, "wb+");
    if (!f_) {
        err_ = "cannot open temp file '" + temp_ + "': " + errnoText();
        ::close(fd);
        ::unlink(temp_.c_str());
        temp_.clear();
    }
}

AtomicFile::~AtomicFile()
{
    this->abort();
}

std::string
AtomicFile::commit()
{
    if (committed_)
        return "";
    if (!err_.empty() || !f_) {
        const std::string why =
            err_.empty() ? "commit without an open temp file" : err_;
        this->abort();
        return why;
    }
    std::string why;
    if (g_commitFailureHook && g_commitFailureHook(path_)) {
        why = "write to '" + path_ +
              "' failed: simulated I/O failure (injected short write)";
    } else if (std::fflush(f_) != 0 || std::ferror(f_) != 0) {
        why = "write to '" + path_ + "' failed: " + errnoText();
    } else if (::fsync(::fileno(f_)) != 0) {
        why = "fsync of '" + temp_ + "' failed: " + errnoText();
    }
    if (why.empty()) {
        std::FILE *f = f_;
        f_ = nullptr;
        if (std::fclose(f) != 0)
            why = "close of '" + temp_ + "' failed: " + errnoText();
        else if (::rename(temp_.c_str(), path_.c_str()) != 0)
            why = "rename '" + temp_ + "' -> '" + path_ +
                  "' failed: " + errnoText();
    }
    if (!why.empty()) {
        err_ = why;
        this->abort();
        return why;
    }
    temp_.clear();
    committed_ = true;
    return "";
}

void
AtomicFile::abort()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    if (!committed_ && !temp_.empty())
        ::unlink(temp_.c_str());
    temp_.clear();
}

std::string
writeFileAtomicErr(const std::string &path, const std::string &bytes)
{
    AtomicFile out(path);
    if (!out.error().empty())
        return out.error();
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), out.stream()) !=
            bytes.size()) {
        const std::string why =
            "write to '" + path + "' failed: short write";
        out.abort();
        return why;
    }
    return out.commit();
}

void
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string why = writeFileAtomicErr(path, bytes);
    if (!why.empty())
        fatal(why);
}

} // namespace jetty::util
