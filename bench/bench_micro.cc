/**
 * @file
 * Microbenchmarks (google-benchmark) backing Section 2.2's latency and
 * complexity argument: every JETTY probe is a handful of small-array
 * reads, far simpler than an L2 tag probe. We measure software probe and
 * update throughput of each filter structure and of the simulated L2 tag
 * path, plus whole-system simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "mem/l2_cache.hh"
#include "trace/apps.hh"
#include "util/random.hh"

using namespace jetty;

namespace
{

filter::AddressMap
amap()
{
    experiments::SystemVariant variant;
    return variant.smpConfig().addressMap();
}

void
BM_FilterProbe(benchmark::State &state, const std::string &spec)
{
    auto f = filter::makeFilter(spec, amap());
    Rng rng(1);
    // Populate with a realistic load: 16K fills scattered over 128 MB.
    for (int i = 0; i < 16384; ++i)
        f->onFill((rng.below(1 << 22)) << 5);
    Addr a = 0;
    for (auto _ : state) {
        a = (a + 0x9e3779b9) & ((1ull << 27) - 1);
        benchmark::DoNotOptimize(f->probe(a & ~31ull));
    }
}

void
BM_FilterUpdate(benchmark::State &state, const std::string &spec)
{
    auto f = filter::makeFilter(spec, amap());
    Rng rng(2);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back((rng.below(1 << 22)) << 5);
    std::size_t i = 0;
    for (auto _ : state) {
        f->onFill(addrs[i & 4095]);
        f->onEvict(addrs[i & 4095]);
        ++i;
    }
}

void
BM_L2TagProbe(benchmark::State &state)
{
    mem::L2Config cfg;
    mem::L2Cache l2(cfg);
    Rng rng(3);
    std::vector<mem::L2Victim> victims;
    for (int i = 0; i < 16384; ++i)
        l2.fill((rng.below(1 << 22)) << 5, coherence::State::Shared,
                victims);
    Addr a = 0;
    for (auto _ : state) {
        a = (a + 0x9e3779b9) & ((1ull << 27) - 1);
        benchmark::DoNotOptimize(l2.probe(a & ~31ull));
    }
}

void
BM_SimThroughput(benchmark::State &state)
{
    // References simulated per second on the base 4-way system with the
    // full paper filter bank attached.
    for (auto _ : state) {
        experiments::SystemVariant variant;
        auto run = experiments::runApp(trace::appByName("lu"), variant,
                                       {"HJ(IJ-10x4x7,EJ-32x4)"}, 0.02);
        benchmark::DoNotOptimize(run.stats.aggregate().accesses);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(run.stats.aggregate().accesses));
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_FilterProbe, ej32x4, std::string("EJ-32x4"));
BENCHMARK_CAPTURE(BM_FilterProbe, vej32x4_8, std::string("VEJ-32x4-8"));
BENCHMARK_CAPTURE(BM_FilterProbe, ij10x4x7, std::string("IJ-10x4x7"));
BENCHMARK_CAPTURE(BM_FilterProbe, hj, std::string("HJ(IJ-10x4x7,EJ-32x4)"));
BENCHMARK_CAPTURE(BM_FilterUpdate, ij10x4x7, std::string("IJ-10x4x7"));
BENCHMARK_CAPTURE(BM_FilterUpdate, hj, std::string("HJ(IJ-10x4x7,EJ-32x4)"));
BENCHMARK(BM_L2TagProbe);
BENCHMARK(BM_SimThroughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
