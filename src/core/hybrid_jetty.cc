#include "core/hybrid_jetty.hh"

#include "core/exclude_jetty.hh"
#include "core/include_jetty.hh"
#include "util/logging.hh"

namespace jetty::filter
{

HybridJetty::HybridJetty(SnoopFilterPtr includePart,
                         SnoopFilterPtr excludePart)
    : include_(std::move(includePart)), exclude_(std::move(excludePart))
{
    if (!include_ || !exclude_)
        fatal("HybridJetty: both components are required");
    ijTyped_ = dynamic_cast<IncludeJetty *>(include_.get());
    ejTyped_ = dynamic_cast<ExcludeJetty *>(exclude_.get());
}

void
HybridJetty::applyBatch(const BankEvent *evs, std::size_t n, FilterStats &st)
{
    if (!ijTyped_ || !ejTyped_) {
        SnoopFilter::applyBatch(evs, n, st);
        return;
    }
    // The canonical IJ+EJ hybrid under the shared protocol, with both
    // components called directly (qualified: no virtual dispatch). The
    // IJ side is pure, so a run of snoops batch-probes it through the
    // SIMD gather; the EJ side touches LRU state on a hit and therefore
    // stays a per-event call, evaluated in event order exactly as the
    // one-at-a-time walk did. Both components are probed in parallel in
    // hardware, so both are evaluated (no short-circuit), as in probe().
    replayBankEventsSegmented(
        evs, n, st, addrScratch_, preScratch_,
        [this](const Addr *addrs, std::size_t m, std::uint8_t *out) {
            ijTyped_->probeFilteredMany(addrs, m, out);
        },
        [this](Addr a, std::uint8_t pre) {
            const bool ej = ejTyped_->ExcludeJetty::probe(a);
            return pre != 0 || ej;
        },
        [this](Addr a, bool blockPresent) {
            ejTyped_->ExcludeJetty::onSnoopMiss(a, blockPresent);
        },
        [this](Addr a) {
            ijTyped_->IncludeJetty::onFill(a);
            ejTyped_->ExcludeJetty::onFill(a);
        },
        [this](Addr a) {
            ijTyped_->IncludeJetty::onEvict(a);  // the EJ ignores evicts
        });
}

bool
HybridJetty::probe(Addr unitAddr)
{
    // Both components are probed in parallel in hardware (Section 3.3
    // keeps the latency at one probe); energyCosts() charges both, so we
    // must evaluate both here too rather than short-circuiting.
    const bool ij = include_->probe(unitAddr);
    const bool ej = exclude_->probe(unitAddr);
    return ij || ej;
}

void
HybridJetty::onSnoopMiss(Addr unitAddr, bool blockPresent)
{
    // This is only called for snoops the hybrid failed to filter, i.e.
    // exactly the misses the IJ leaked: allocate them in the EJ.
    exclude_->onSnoopMiss(unitAddr, blockPresent);
}

void
HybridJetty::onFill(Addr unitAddr)
{
    include_->onFill(unitAddr);
    exclude_->onFill(unitAddr);
}

void
HybridJetty::onEvict(Addr unitAddr)
{
    include_->onEvict(unitAddr);
    exclude_->onEvict(unitAddr);
}

void
HybridJetty::clear()
{
    include_->clear();
    exclude_->clear();
}

StorageBreakdown
HybridJetty::storage() const
{
    StorageBreakdown s = include_->storage();
    const StorageBreakdown e = exclude_->storage();
    s.presenceBits += e.presenceBits;
    s.counterBits += e.counterBits;
    return s;
}

energy::FilterEnergyCosts
HybridJetty::energyCosts(const energy::Technology &tech) const
{
    const auto i = include_->energyCosts(tech);
    const auto e = exclude_->energyCosts(tech);
    energy::FilterEnergyCosts costs;
    costs.probe = i.probe + e.probe;
    costs.snoopAlloc = i.snoopAlloc + e.snoopAlloc;
    costs.fillUpdate = i.fillUpdate + e.fillUpdate;
    costs.evictUpdate = i.evictUpdate + e.evictUpdate;
    return costs;
}

std::string
HybridJetty::name() const
{
    return "HJ(" + include_->name() + "," + exclude_->name() + ")";
}

} // namespace jetty::filter
