/**
 * @file
 * Regenerates Table 4: storage requirements of the Include-JETTY
 * configurations -- p-bit array shapes, counter-array bits, and total
 * bytes. Pure structural computation (no simulation).
 *
 * Paper reference (for a subblocked 1MB L2): IJ-10x4x7 ~7KB total with
 * 4x 32x32-bit p-bit arrays down to IJ-6x5x6 at ~0.5KB. Counter widths
 * are sized pessimistically (one entry may match every cached unit); we
 * count 15 bits against the paper's 14 because we track 32K coherence
 * units rather than 16K blocks.
 */

#include <cstdio>

#include "core/filter_spec.hh"
#include "core/include_jetty.hh"
#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    experiments::SystemVariant variant;
    const filter::AddressMap amap = variant.smpConfig().addressMap();

    TextTable table;
    table.header({"IJ", "p-bits", "p-bit org", "cnt bits/entry", "cnt bits",
                  "total bytes"});

    for (const auto &spec : filter::paperIncludeSpecs()) {
        auto f = filter::makeFilter(spec, amap);
        auto *ij = dynamic_cast<filter::IncludeJetty *>(f.get());
        const auto s = ij->storage();
        std::uint64_t rows, cols;
        ij->pbitArrayShape(rows, cols);
        table.row({
            ij->name(),
            TextTable::count(s.presenceBits),
            std::to_string(rows) + "x" + std::to_string(cols),
            TextTable::count(ij->counterBits()),
            TextTable::count(s.counterBits),
            TextTable::num(s.totalBytes(), 0),
        });
    }

    std::printf("Table 4: Include-JETTY storage requirements\n\n");
    table.print();
    std::printf("\nPaper values (14-bit counters): 7168 / 3548 / 1792 / "
                "869 / 448 bytes.\n");
    return 0;
}
