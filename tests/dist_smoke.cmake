# Multi-process smoke for the distributed sweep subsystem (ISSUE 10
# acceptance): a coordinator with two forked `jetty_cli worker`
# processes — one killed mid-shard — must complete the campaign, the
# same ledger must resume it without re-simulating anything, and both
# the resumed and the plain single-process Report must be byte-identical
# to the distributed one. Run as:
#   cmake -DCLI=<jetty_cli> -DSPEC=<distributed.spec.json> -DWORK=<dir>
#         -P dist_smoke.cmake
foreach(var CLI SPEC WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

# Ledger and cache persistence is the point of the test — start from a
# clean slate so a re-run of this ctest sees the same cold-start world.
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli out_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "jetty_cli ${pretty} failed (${rc}):\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(expect_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ byte-for-byte")
  endif()
endfunction()

# ---- 1. distributed campaign with an injected mid-shard kill ----------
# Worker 0 dies (_exit) after receiving its first shard request; the
# coordinator must respawn capacity, retry the orphaned shard, and still
# finish with exit 0.
run_cli(dist sweep --spec ${SPEC} --workers 2 --kill-worker-after 1
        --retries 2 --ledger ${WORK}/ledger --cache-dir ${WORK}/cache
        --json ${WORK}/dist.json --events ${WORK}/events.json)

# The kill must actually have landed: the structured event stream names
# the death and the retry.
file(READ ${WORK}/events.json events)
foreach(pattern "worker_died" "retried")
  string(FIND "${events}" "${pattern}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "no '${pattern}' event — the injected kill did not land:\n"
            "${events}")
  endif()
endforeach()

# ---- 2. resume from the ledger: nothing re-simulates ------------------
run_cli(resumed sweep --spec ${SPEC} --workers 2
        --ledger ${WORK}/ledger --cache-dir off
        --json ${WORK}/resumed.json)
if(NOT resumed MATCHES "resumed 4")
  message(FATAL_ERROR
          "ledger resume re-dispatched finished shards:\n${resumed}")
endif()
expect_identical(${WORK}/dist.json ${WORK}/resumed.json
                 "resumed Report")

# ---- 3. byte-identity against the single-process sweep ----------------
# The distributed run (above, cold) published every cell to the shared
# run cache; the plain sweep answers from it, so identical bytes prove
# the distributed merge changed nothing — not even a timing field.
run_cli(direct sweep --spec ${SPEC} --cache-dir ${WORK}/cache
        --json ${WORK}/direct.json)
expect_identical(${WORK}/dist.json ${WORK}/direct.json
                 "single-process Report")

message(STATUS "distributed sweep smoke OK")
