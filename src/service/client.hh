/**
 * @file
 * Client side of the experiment service (`jetty_cli submit`): connect
 * to a serve daemon's unix socket, send one framed request, read one
 * framed response.
 */

#ifndef JETTY_SERVICE_CLIENT_HH
#define JETTY_SERVICE_CLIENT_HH

#include <string>

#include "util/json.hh"

namespace jetty::service
{

/**
 * Connect to @p socketPath, retrying for up to @p seconds (a just-
 * launched daemon needs a moment to bind).
 * @return the connected fd, or -1 with @p err set.
 */
int connectWithRetry(const std::string &socketPath, double seconds,
                     std::string *err);

/**
 * One request/response round trip on a fresh connection.
 * @return "" with @p response filled on success (the response may still
 *         carry ok=false — a server-side failure is the caller's to
 *         inspect); a transport failure otherwise.
 */
std::string requestResponse(const std::string &socketPath,
                            const json::Value &request,
                            json::Value &response);

} // namespace jetty::service

#endif // JETTY_SERVICE_CLIENT_HH
