#include "sim/latency.hh"

namespace jetty::sim
{

double
LatencyImpact::meanChangePct() const
{
    if (baselineMeanCycles <= 0)
        return 0.0;
    return 100.0 * (jettyMeanCycles - baselineMeanCycles) /
           baselineMeanCycles;
}

double
LatencyImpact::worstCaseBusCycleFraction(const LatencyParams &p) const
{
    return worstCaseAddedCycles / p.busClockRatio;
}

LatencyImpact
evaluateLatency(const filter::FilterStats &stats, const LatencyParams &p)
{
    LatencyImpact impact;
    impact.baselineMeanCycles = p.l2TagCycles;
    impact.worstCaseAddedCycles = p.jettyCycles;

    if (stats.probes == 0) {
        impact.jettyMeanCycles = p.l2TagCycles;
        return impact;
    }

    const double filtered_frac =
        static_cast<double>(stats.filtered) /
        static_cast<double>(stats.probes);

    // Filtered snoops answer after the JETTY alone; the rest pay the
    // serial JETTY probe plus the tag probe.
    impact.jettyMeanCycles =
        filtered_frac * p.jettyCycles +
        (1.0 - filtered_frac) * (p.jettyCycles + p.l2TagCycles);
    return impact;
}

} // namespace jetty::sim
