/**
 * @file
 * Subblocked, set-associative L2 cache with per-subblock MOESI state.
 *
 * This is the structure the JETTY protects: every snoop that is not
 * filtered probes this cache's tag array. The cache is purely functional
 * (tags + states, no data payloads) because the experiments only need
 * access/hit/miss/supply event streams for coverage and energy accounting.
 */

#ifndef JETTY_MEM_L2_CACHE_HH
#define JETTY_MEM_L2_CACHE_HH

#include <cstdint>
#include <vector>

#include "coherence/moesi.hh"
#include "mem/cache_config.hh"
#include "mem/cache_events.hh"
#include "util/arena.hh"
#include "util/types.hh"

namespace jetty::mem
{

/** Result of a local L2 lookup for one coherence unit. */
struct L2LookupResult
{
    bool tagMatch = false;    //!< the block's tag is present
    bool unitValid = false;   //!< the requested subblock is valid
    coherence::State state = coherence::State::Invalid;
};

/** A victim produced by a block-granularity L2 eviction. */
struct L2Victim
{
    Addr unitAddr = 0;                //!< coherence-unit address
    coherence::State state = coherence::State::Invalid;
};

/** One valid coherence unit as enumerated for state comparison. */
struct L2UnitInfo
{
    Addr unitAddr = 0;
    coherence::State state = coherence::State::Invalid;
};

/**
 * Tag/state store of the subblocked L2. Replacement within a set is LRU.
 * Inclusion bookkeeping (invalidating L1 copies) is the owner's job; the
 * cache reports everything it evicts or invalidates through both its
 * return values and the CacheEventListener chain.
 */
class L2Cache
{
  public:
    explicit L2Cache(const L2Config &cfg);

    /** Register an observer of fill/evict events (e.g., the filter bank). */
    void addListener(CacheEventListener *listener);

    /** Coherence-unit-align an address. */
    Addr unitAlign(Addr a) const { return a & ~unitMask_; }

    /** Block-align an address. */
    Addr blockAlign(Addr a) const { return a & ~blockMask_; }

    /**
     * Probe the cache for the unit containing @p addr without changing any
     * state (used for lookups, ground truth, and snoop queries).
     */
    L2LookupResult probe(Addr addr) const;

    /**
     * probe() that additionally reports which way holds the block
     * (-1 on a tag miss), so a following snoopAtWay() can reuse the
     * lookup — the batched snoop path's single-lookup discipline.
     */
    int probeWay(Addr addr, L2LookupResult &res) const;

    /**
     * Apply a snoop to the unit containing @p addr when probeWay()
     * already located the block at @p way (-1 = tag miss, a no-op
     * outcome). Exactly snoop() minus the repeated tag lookup; the
     * caller must not have mutated the cache in between.
     */
    coherence::SnoopOutcome snoopAtWay(int way, Addr addr,
                                       coherence::BusOp op);

    /** True when any unit of the block containing @p addr is valid; used
     *  to size up what a snoop tag probe would find. */
    bool hasBlock(Addr addr) const;

    /** Hint the host to pull the tag words of @p addr's set toward the
     *  core: the batched miss pipeline issues this for upcoming misses
     *  so the probeWay scan in the drain finds its line resident. Pure
     *  hint — no simulated state is touched. */
    void
    prefetchSet(Addr addr) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&tagValid_[frameOf(setIndex(addr), 0)]);
#else
        (void)addr;
#endif
    }

    /** Update LRU for a local access that hit the block of @p addr. */
    void touch(Addr addr);

    /** touch() when probeWay() already located the block at @p way
     *  (>= 0) and nothing mutated the cache in between. */
    void
    touchAt(int way, Addr addr)
    {
        lastUse_[frameOf(setIndex(addr), way)] = ++useClock_;
    }

    /** setState() when probeWay() already located the block at @p way
     *  (>= 0, valid unit) and nothing mutated the cache in between. */
    void setStateAt(int way, Addr addr, coherence::State next);

    /**
     * Set the state of an already-present unit (upgrade, downgrade);
     * the unit must be valid.
     */
    void setState(Addr addr, coherence::State next);

    /**
     * Allocate (if needed) the block containing @p addr and fill its unit
     * with @p state. When a block must be evicted to make room, all of its
     * valid units are returned in @p victims (dirty ones must be written
     * back by the caller) and announced to listeners.
     *
     * @return true when a block-level eviction happened.
     */
    bool fill(Addr addr, coherence::State state,
              std::vector<L2Victim> &victims);

    /**
     * Apply a snoop to the unit containing @p addr and return the outcome.
     * Invalidation outcomes are announced to listeners. The caller decides
     * whether to probe at all (JETTY filtering happens outside).
     */
    coherence::SnoopOutcome snoop(Addr addr, coherence::BusOp op);

    /** Invalidate one unit (e.g., inclusion forcing). No-op when absent. */
    void invalidateUnit(Addr addr);

    /** Count of currently valid coherence units (for invariant checks). */
    std::uint64_t validUnits() const { return validUnits_; }

    /**
     * Every valid coherence unit with its state, sorted by unit address.
     * Differential verification compares this against the golden model's
     * view; not for hot paths.
     */
    std::vector<L2UnitInfo> validUnitInfo() const;

    /**
     * Block addresses of every resident tag, sorted — including blocks
     * whose units were all invalidated by snoops but that still hold a
     * way (their tag match is what a snoop probe reports, so they are
     * filter-visible state and must agree with the golden model).
     */
    std::vector<Addr> residentBlockAddrs() const;

    /** The configuration this cache was built with. */
    const L2Config &config() const { return cfg_; }

  private:
    std::uint64_t setIndex(Addr a) const;
    Addr tagOf(Addr a) const;
    unsigned unitIndex(Addr a) const;

    /** Flat frame index of (set, way). */
    std::size_t
    frameOf(std::uint64_t set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * cfg_.assoc + way;
    }

    /** First unit-state slot of frame @p frame. */
    coherence::State *
    unitsOf(std::size_t frame)
    {
        return &units_[frame * cfg_.subblocks];
    }
    const coherence::State *
    unitsOf(std::size_t frame) const
    {
        return &units_[frame * cfg_.subblocks];
    }

    Addr unitAddrOf(Addr tag, std::uint64_t set, unsigned unit) const;

    /** Find the way holding the block of @p a, or -1. */
    int findWay(Addr a) const;

    void notifyFill(Addr unitAddr);
    void notifyEvict(Addr unitAddr);

    // Frame storage, split hot/cold in flat [set * assoc + way] arrays
    // (a set's ways adjacent). The tag scan of a probe or snoop reads
    // one word per way — (tag << 1) | valid, matched with a single
    // compare — and per-subblock states sit in a parallel array; the
    // LRU clocks are only touched by local accesses and fills, so the
    // snoop-heavy paths never pull them into the host's caches.
    L2Config cfg_;
    util::AlignedVec<std::uint64_t> tagValid_;  //!< [frame] (tag << 1) | valid
    util::AlignedVec<std::uint64_t> lastUse_;   //!< [frame] LRU clocks
    std::vector<coherence::State> units_;  //!< [frame * subblocks + unit]
    std::uint64_t blockMask_;
    std::uint64_t unitMask_;
    unsigned offsetBits_;
    unsigned indexBits_;
    unsigned unitShift_;     //!< log2(unitBytes), precomputed
    unsigned subblockBits_;  //!< log2(subblocks), precomputed
    std::uint64_t useClock_ = 0;
    std::uint64_t validUnits_ = 0;
    std::vector<CacheEventListener *> listeners_;
};

} // namespace jetty::mem

#endif // JETTY_MEM_L2_CACHE_HH
