/**
 * @file
 * Regenerates Table 2: application characteristics on the base 4-way SMP.
 * Columns: accesses (M), memory allocated (MB), local L1 and L2 hit
 * rates, and the number of snoop-induced L2 accesses (M).
 *
 * Paper reference values (Table 2): L1 hit 76.5%..99.6%, L2 local hit
 * 23.3%..82.5%, snoops amplifying L2 accesses by roughly 2x on 4 ways.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    experiments::SystemVariant variant;  // 4-way, subblocked
    const auto runs = experiments::runAllApps(
        variant, {"NULL"}, experiments::defaultScale());

    TextTable table;
    table.header({"App", "Ab", "Accesses(M)", "MA(MB)", "L1 hit", "L2 hit",
                  "L2 Snoop Accesses(M)"});

    for (const auto &run : runs) {
        const auto agg = run.stats.aggregate();
        const std::uint64_t snoop_accesses = agg.snoopTagProbes;
        table.row({
            run.appName,
            run.abbrev,
            TextTable::num(static_cast<double>(agg.accesses) / 1e6, 1),
            TextTable::num(static_cast<double>(run.memoryAllocated) /
                               (1024.0 * 1024.0), 1),
            TextTable::pct(percent(agg.l1Hits, agg.accesses)),
            TextTable::pct(percent(agg.l2LocalHits, agg.l2LocalAccesses)),
            TextTable::num(static_cast<double>(snoop_accesses) / 1e6, 1),
        });
    }

    std::printf("Table 2: application characteristics "
                "(4-way SMP, subblocked 1MB L2)\n\n");
    table.print();
    std::printf("\nPaper regime: L1 hit 76.5%%-99.6%%; L2 local hit "
                "23.3%%-82.5%%; snoops roughly double L2 accesses.\n");
    return 0;
}
