/**
 * @file
 * The SnoopFilter interface implemented by every JETTY variant.
 *
 * A filter sits between the bus and the L2 backside of one processor. On
 * an incoming snoop the filter is probed; a @c true answer is a *guarantee*
 * that the snooped coherence unit is not valid in the local L2, so the L2
 * tag probe can be skipped. Filters are speculative but must be safe: a
 * false "not cached" would break coherence, and the simulator verifies the
 * guarantee against ground truth on every filtered snoop.
 *
 * Filters keep no coherence state beyond presence, exactly as the paper
 * requires (no protocol changes). They learn through three event streams:
 *  - probe(addr): a snoop arrived;
 *  - onSnoopMiss(addr): the snoop was not filtered and missed in the L2
 *    (this is when an Exclude-JETTY allocates);
 *  - onFill/onEvict(addr): the L2 gained/lost a valid coherence unit
 *    (this is how Include-JETTY counters and EJ present bits stay
 *    coherent; the information is free at the L2, Section 3.2).
 */

#ifndef JETTY_CORE_SNOOP_FILTER_HH
#define JETTY_CORE_SNOOP_FILTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/accountant.hh"
#include "energy/technology.hh"
#include "util/types.hh"

namespace jetty::filter
{

/**
 * Address-space facts a filter needs to slice addresses and size its
 * storage. Produced by the simulator from the L2 configuration.
 */
struct AddressMap
{
    /** log2 of the coherence-unit size (32 B -> 5). */
    unsigned unitOffsetBits = 5;

    /** log2 of the L2 block size (64 B -> 6); IJ indexing starts above
     *  this per Section 4.3.3. */
    unsigned blockOffsetBits = 6;

    /** Physical address bits (paper: 36--40). */
    unsigned physAddrBits = 40;

    /** Total coherence units the L2 can hold (pessimistic IJ counter
     *  sizing). */
    std::uint64_t l2CapacityUnits = 32768;
};

/** Storage cost of a filter, for Table 4 style reporting. */
struct StorageBreakdown
{
    std::uint64_t presenceBits = 0;  //!< bits probed on a snoop
    std::uint64_t counterBits = 0;   //!< IJ cnt arrays (not probed by snoops)

    std::uint64_t totalBits() const { return presenceBits + counterBits; }
    double totalBytes() const { return totalBits() / 8.0; }
};

/** Coverage statistics of one filter on one processor. */
struct FilterStats
{
    std::uint64_t probes = 0;          //!< snoops presented to the filter
    std::uint64_t filtered = 0;        //!< snoops eliminated
    std::uint64_t wouldMiss = 0;       //!< snoops that miss in the L2
    std::uint64_t filteredWouldMiss = 0;  //!< filtered AND a true miss
    std::uint64_t snoopAllocs = 0;     //!< onSnoopMiss deliveries
    std::uint64_t fillUpdates = 0;     //!< L2 fill events observed
    std::uint64_t evictUpdates = 0;    //!< L2 evict events observed
    std::uint64_t safetyViolations = 0;  //!< must stay zero

    /** Snoop-miss coverage (Section 4.3's key metric). */
    double
    coverage() const
    {
        return wouldMiss == 0
                   ? 0.0
                   : static_cast<double>(filteredWouldMiss) /
                         static_cast<double>(wouldMiss);
    }

    /** Convert to the accountant's traffic view. */
    energy::FilterTraffic
    traffic() const
    {
        energy::FilterTraffic t;
        t.probes = probes;
        t.filtered = filtered;
        t.snoopAllocs = snoopAllocs;
        t.fillUpdates = fillUpdates;
        t.evictUpdates = evictUpdates;
        return t;
    }

    /** Merge another processor's stats for the same configuration. */
    void merge(const FilterStats &o);
};

/**
 * One deferred filter-bank event (core/filter_bank.hh). The batched
 * simulation hot path queues these per logical snoop bus instead of
 * walking every filter on every snoop; FilterBank::observeSnoopBatch
 * later replays a queue through each filter in one pass. Snoop events
 * carry their ground truth *as captured at snoop time*, so the deferred
 * safety check judges every verdict against the true cache state.
 */
struct BankEvent
{
    /** What happened, in the order the filter must learn it. */
    enum class Kind : std::uint8_t
    {
        Snoop,  //!< a snoop arrived (probe + possible allocation)
        Fill,   //!< the local L2 gained a valid unit
        Evict,  //!< the local L2 lost a valid unit
    };

    Addr unitAddr = 0;
    Kind kind = Kind::Snoop;
    bool unitInL2 = false;   //!< snoop ground truth: unit valid locally
    bool blockInL2 = false;  //!< snoop ground truth: enclosing tag match
};

/**
 * The single copy of the snoop-arm bookkeeping: which counters a
 * verdict bumps, when the safety violation is counted, and when the
 * miss hook (exclude-side allocation) fires. Both replay walks below —
 * and through them every applyBatch in the tree — fold each snoop
 * verdict through this one function, so the protocol cannot drift
 * between the scalar and the batch-probed paths.
 */
template <typename MissFn>
inline void
applySnoopVerdict(FilterStats &st, const BankEvent &ev, bool filtered,
                  MissFn &&missFn)
{
    ++st.probes;
    if (ev.unitInL2) {
        if (filtered) {
            ++st.filtered;
            ++st.safetyViolations;
        }
    } else {
        ++st.wouldMiss;
        if (filtered) {
            ++st.filtered;
            ++st.filteredWouldMiss;
        } else {
            missFn(ev.unitAddr, ev.blockInL2);
            ++st.snoopAllocs;
        }
    }
}

/**
 * The batch-replay protocol walk: one event at a time, probe verdicts
 * through applySnoopVerdict. Every applyBatch — the generic virtual
 * walk and the devirtualized family overrides — instantiates this (or
 * the segmented variant below) with its own probe/miss/fill/evict
 * callables, so the protocol stays in one place while the inner calls
 * stay direct.
 */
template <typename ProbeFn, typename MissFn, typename FillFn,
          typename EvictFn>
inline void
replayBankEvents(const BankEvent *evs, std::size_t n, FilterStats &st,
                 ProbeFn &&probeFn, MissFn &&missFn, FillFn &&fillFn,
                 EvictFn &&evictFn)
{
    for (std::size_t i = 0; i < n; ++i) {
        const BankEvent &ev = evs[i];
        switch (ev.kind) {
          case BankEvent::Kind::Snoop:
            applySnoopVerdict(st, ev, probeFn(ev.unitAddr), missFn);
            break;
          case BankEvent::Kind::Fill:
            fillFn(ev.unitAddr);
            ++st.fillUpdates;
            break;
          case BankEvent::Kind::Evict:
            evictFn(ev.unitAddr);
            ++st.evictUpdates;
            break;
        }
    }
}

/**
 * The segmented batch-replay walk for filters whose probe is pure (no
 * state change): runs of consecutive Snoop events are pre-probed as one
 * data-parallel batch (the SIMD path in util/simd.hh), then the
 * verdicts are folded through applySnoopVerdict in event order.
 *
 * @p preFn (const Addr*, n, std::uint8_t* out) fills out[k] with the
 * pure part of the verdict for each address of the segment; @p probeFn
 * (Addr, std::uint8_t pre) combines it with any stateful per-event part
 * (the hybrid's exclude probe) and returns the final verdict. Because
 * the pure part reads state that only Fill/Evict events mutate — and
 * those delimit the segments — hoisting it over the segment is
 * result-identical to the one-at-a-time walk for every event order.
 *
 * @p addrScratch / @p preScratch are caller-owned reusable buffers.
 */
template <typename PreFn, typename ProbeFn, typename MissFn,
          typename FillFn, typename EvictFn>
inline void
replayBankEventsSegmented(const BankEvent *evs, std::size_t n,
                          FilterStats &st, std::vector<Addr> &addrScratch,
                          std::vector<std::uint8_t> &preScratch,
                          PreFn &&preFn, ProbeFn &&probeFn, MissFn &&missFn,
                          FillFn &&fillFn, EvictFn &&evictFn)
{
    std::size_t i = 0;
    while (i < n) {
        const BankEvent &ev = evs[i];
        if (ev.kind == BankEvent::Kind::Fill) {
            fillFn(ev.unitAddr);
            ++st.fillUpdates;
            ++i;
            continue;
        }
        if (ev.kind == BankEvent::Kind::Evict) {
            evictFn(ev.unitAddr);
            ++st.evictUpdates;
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        while (j < n && evs[j].kind == BankEvent::Kind::Snoop)
            ++j;
        const std::size_t m = j - i;
        addrScratch.resize(m);
        preScratch.assign(m, 0);
        for (std::size_t k = 0; k < m; ++k)
            addrScratch[k] = evs[i + k].unitAddr;
        preFn(addrScratch.data(), m, preScratch.data());
        for (std::size_t k = 0; k < m; ++k) {
            applySnoopVerdict(
                st, evs[i + k],
                probeFn(evs[i + k].unitAddr, preScratch[k]), missFn);
        }
        i = j;
    }
}

/** Abstract JETTY. */
class SnoopFilter
{
  public:
    virtual ~SnoopFilter() = default;

    /**
     * Probe for a snoop to @p unitAddr (coherence-unit aligned).
     * @return true when the unit is guaranteed absent from the local L2
     *         (the snoop is filtered).
     */
    virtual bool probe(Addr unitAddr) = 0;

    /**
     * The snoop to @p unitAddr was not filtered and the L2 tag probe
     * missed. Exclude components allocate here.
     *
     * @param blockPresent the enclosing block's tag matched (some other
     *        subblock is valid locally), so only the snooped unit is known
     *        absent. When false the whole block is guaranteed absent --
     *        the information an exclude-JETTY records. The tag probe that
     *        discovered the miss supplies this for free.
     */
    virtual void onSnoopMiss(Addr unitAddr, bool blockPresent) = 0;

    /** The local L2 gained a valid unit at @p unitAddr. */
    virtual void onFill(Addr unitAddr) = 0;

    /** The local L2 lost the valid unit at @p unitAddr. */
    virtual void onEvict(Addr unitAddr) = 0;

    /** Reset all filter contents (e.g., between workload phases). */
    virtual void clear() = 0;

    /** Storage cost breakdown. */
    virtual StorageBreakdown storage() const = 0;

    /** Per-event energies under @p tech, from the SramArray model. */
    virtual energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const = 0;

    /** Canonical configuration name, e.g. "EJ-32x4". */
    virtual std::string name() const = 0;

    /**
     * Replay a run of deferred bank events through this filter,
     * accumulating into @p st — the batched-probe path behind
     * FilterBank::observeSnoopBatch. The base implementation walks the
     * events through the virtual probe/onSnoopMiss/onFill/onEvict hooks
     * with exactly the bookkeeping of FilterBank::observeSnoop, so every
     * family is batch-correct by construction; hot families (EJ, IJ)
     * override it with devirtualized inner loops. Safety violations are
     * *counted* here (st.safetyViolations); the bank decides whether to
     * panic.
     */
    virtual void applyBatch(const BankEvent *evs, std::size_t n,
                            FilterStats &st);
};

using SnoopFilterPtr = std::unique_ptr<SnoopFilter>;

} // namespace jetty::filter

#endif // JETTY_CORE_SNOOP_FILTER_HH
