/**
 * @file
 * Abstract stream of memory references consumed by the simulator. Sources
 * are per-processor; the simulator interleaves them round-robin (a
 * WWT2-style quantum of one reference).
 */

#ifndef JETTY_TRACE_TRACE_SOURCE_HH
#define JETTY_TRACE_TRACE_SOURCE_HH

#include <memory>
#include <vector>

#include "util/types.hh"

namespace jetty::trace
{

/** One memory reference. */
struct TraceRecord
{
    AccessType type = AccessType::Read;
    Addr addr = 0;
};

/** A finite stream of references for one processor. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @return false when the stream is exhausted (@p out untouched).
     */
    virtual bool next(TraceRecord &out) = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

/** A canned reference list (tests, file replays). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace jetty::trace

#endif // JETTY_TRACE_TRACE_SOURCE_HH
