// Fixture (negative control): util/atomic_file.cc is the sanctioned
// implementation of the publish-via-rename discipline, so the raw
// write primitives it is built from are allowlisted for the
// atomic-write rule. Nothing here may fire.
#include <cstdio>
#include <fstream>

namespace jetty::util
{

bool
writeStaged(const char *tmpPath, const char *bytes)
{
    std::ofstream out(tmpPath, std::ios::binary);
    out << bytes;
    return static_cast<bool>(out);
}

std::FILE *
openStaged(const char *tmpPath)
{
    return std::fopen(tmpPath, "wb");
}

} // namespace jetty::util
