#include "service/client.hh"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "service/protocol.hh"

namespace jetty::service
{

int
connectWithRetry(const std::string &socketPath, double seconds,
                 std::string *err)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(seconds);
    for (;;) {
        const int fd = connectUnix(socketPath, err);
        if (fd >= 0)
            return fd;
        if (Clock::now() >= deadline)
            return -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

std::string
requestResponse(const std::string &socketPath, const json::Value &request,
                json::Value &response)
{
    std::string err;
    const int fd = connectWithRetry(socketPath, 10.0, &err);
    if (fd < 0)
        return err;
    if (!sendValue(fd, request, &err)) {
        ::close(fd);
        return err;
    }
    LineReader reader(fd);
    std::string line;
    const int got = reader.readLine(line, &err);
    ::close(fd);
    if (got < 0)
        return err;
    if (got == 0)
        return "server closed the connection without answering";
    response = json::parse(line, &err);
    if (!err.empty())
        return "response parse error: " + err;
    return "";
}

} // namespace jetty::service
