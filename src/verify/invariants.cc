#include "verify/invariants.hh"

#include <algorithm>
#include <map>

#include "verify/format.hh"

namespace jetty::verify
{

using coherence::BusOp;
using coherence::State;

namespace
{

/**
 * The legal write-invalidate MOESI snooper tuples, restated here (third
 * statement in the tree, after coherence/moesi.cc and the golden model)
 * so the checker does not inherit a transition-table bug from the code
 * under test.
 */
bool
legalSnoop(State before, BusOp op, State after, bool supplied)
{
    switch (op) {
      case BusOp::BusRead:
        switch (before) {
          case State::Modified:
            return after == State::Owned && supplied;
          case State::Owned:
            return after == State::Owned && supplied;
          case State::Exclusive:
            return after == State::Shared && supplied;
          case State::Shared:
            return after == State::Shared && !supplied;
          case State::Invalid:
            return after == State::Invalid && !supplied;
        }
        break;
      case BusOp::BusReadX:
        if (after != State::Invalid)
            return false;
        return supplied ==
               (before == State::Modified || before == State::Owned);
      case BusOp::BusUpgrade:
        return after == State::Invalid && !supplied;
      case BusOp::BusWriteback:
        return after == before && !supplied;
    }
    return false;
}

} // namespace

std::string
ViolationLog::summary() const
{
    if (violations_.empty())
        return "";
    return violations_.front().invariant + ": " +
           violations_.front().detail;
}

std::size_t
CoverageMap::cellsCovered() const
{
    std::size_t covered = 0;
    for (const auto &row : snoopCells) {
        for (const auto cell : row) {
            if (cell)
                ++covered;
        }
    }
    for (const auto &f : filters) {
        for (const auto &row : f.cells) {
            for (const auto cell : row) {
                if (cell)
                    ++covered;
            }
        }
    }
    if (wbHits)
        ++covered;
    if (supplies)
        ++covered;
    if (invalidations)
        ++covered;
    return covered;
}

std::size_t
CoverageMap::cellsTracked() const
{
    return kStateCount * kBusOpCount + filters.size() * 4 + 3;
}

void
CoverageMap::merge(const CoverageMap &o)
{
    for (int s = 0; s < kStateCount; ++s) {
        for (int op = 0; op < kBusOpCount; ++op)
            snoopCells[s][op] += o.snoopCells[s][op];
    }
    if (filters.size() < o.filters.size())
        filters.resize(o.filters.size());
    for (std::size_t i = 0; i < o.filters.size(); ++i) {
        for (int f = 0; f < 2; ++f) {
            for (int c = 0; c < 2; ++c)
                filters[i].cells[f][c] += o.filters[i].cells[f][c];
        }
    }
    wbHits += o.wbHits;
    supplies += o.supplies;
    invalidations += o.invalidations;
}

CheckerSuite::CheckerSuite(sim::SmpSystem &sys, std::uint64_t auditEvery)
    : sys_(sys), auditEvery_(auditEvery)
{
    const auto &bank = sys.bank(0);
    coverage_.filters.resize(bank.size());
    filterNames_.reserve(bank.size());
    for (std::size_t i = 0; i < bank.size(); ++i)
        filterNames_.push_back(bank.filterAt(i).name());
    sys_.setObserver(this);
    sys_.setFilterProbeObserver(this);
}

CheckerSuite::~CheckerSuite()
{
    sys_.setObserver(nullptr);
    sys_.setFilterProbeObserver(nullptr);
}

void
CheckerSuite::onReference(ProcId, AccessType, Addr)
{
    ++references_;
    log_.setRefIndex(references_);
    if (auditEvery_ && references_ % auditEvery_ == 0)
        audit();
}

void
CheckerSuite::onBusTransaction(ProcId, coherence::BusOp op, Addr unitAddr,
                               unsigned, unsigned busId)
{
    // Bus routing, restated independently of sim/interconnect.hh: the
    // home bus of a unit is its L2 block index modulo the bus count
    // (integer division on the configuration, no shifts shared with the
    // code under test).
    const auto &cfg = sys_.config();
    const unsigned expected = static_cast<unsigned>(
        (unitAddr / cfg.l2.blockBytes) % cfg.snoopBuses);
    if (busId != expected) {
        log_.report("bus-routing",
                    std::string(coherence::busOpName(op)) + " for unit " +
                        hexAddr(unitAddr) + " rode bus " +
                        std::to_string(busId) + ", home bus is " +
                        std::to_string(expected) + " of " +
                        std::to_string(cfg.snoopBuses));
    }
}

void
CheckerSuite::onSnoop(const sim::SnoopEvent &ev)
{
    coverage_.snoopCells[static_cast<int>(ev.before)]
                        [static_cast<int>(ev.op)]++;

    {
        // Same independent routing restatement for the per-target view:
        // every snoop of unit U must arrive on U's home bus.
        const auto &cfg = sys_.config();
        const unsigned expected = static_cast<unsigned>(
            (ev.unitAddr / cfg.l2.blockBytes) % cfg.snoopBuses);
        if (ev.busId != expected) {
            log_.report("bus-routing",
                        "snoop of " + hexAddr(ev.unitAddr) +
                            " on proc " + std::to_string(ev.target) +
                            " rode bus " + std::to_string(ev.busId) +
                            ", home bus is " + std::to_string(expected));
        }
    }
    if (ev.wbHit)
        ++coverage_.wbHits;
    if (ev.supplied)
        ++coverage_.supplies;
    if (coherence::isValid(ev.before) && !coherence::isValid(ev.after))
        ++coverage_.invalidations;

    if (!legalSnoop(ev.before, ev.op, ev.after, ev.supplied)) {
        log_.report("moesi-transition",
                    std::string(coherence::busOpName(ev.op)) + " on " +
                        coherence::stateName(ev.before) + " at " +
                        hexAddr(ev.unitAddr) + " produced " +
                        coherence::stateName(ev.after) +
                        (ev.supplied ? " (supplied)" : " (no supply)") +
                        " on proc " + std::to_string(ev.target));
    }

    // Snoop-side inclusion: losing the unit or its exclusivity must have
    // purged the target's L1 line (the event fires post-enforcement).
    if ((!coherence::isValid(ev.after) ||
         coherence::isWritable(ev.before)) &&
        sys_.l1(ev.target).probe(ev.unitAddr).hit) {
        log_.report("snoop-inclusion",
                    "proc " + std::to_string(ev.target) +
                        " still holds L1 line " + hexAddr(ev.unitAddr) +
                        " after " + coherence::busOpName(ev.op) +
                        " left its L2 unit " +
                        coherence::stateName(ev.after));
    }
}

void
CheckerSuite::onFilterProbe(const filter::FilterProbeEvent &ev)
{
    coverage_.filters[ev.filterIdx]
        .cells[ev.filtered ? 1 : 0][ev.unitInL2 ? 1 : 0]++;

    if (ev.filtered && ev.unitInL2) {
        const std::string name = ev.filterIdx < filterNames_.size()
                                     ? filterNames_[ev.filterIdx]
                                     : "?";
        log_.report("no-false-negative",
                    name + " on proc " + std::to_string(ev.owner) +
                        " filtered a snoop to cached unit " +
                        hexAddr(ev.unitAddr));
    }
}

void
CheckerSuite::audit()
{
    const unsigned nprocs = sys_.config().nprocs;

    // Global per-unit view: every valid L2 copy and every WB entry.
    struct Copy
    {
        unsigned proc;
        State state;
        bool inWb;
    };
    std::map<Addr, std::vector<Copy>> units;

    for (unsigned p = 0; p < nprocs; ++p) {
        for (const auto &u : sys_.l2(p).validUnitInfo())
            units[u.unitAddr].push_back({p, u.state, false});

        const auto &wb = sys_.wb(p).entries();
        if (wb.size() > sys_.wb(p).capacity()) {
            log_.report("wb-capacity",
                        "proc " + std::to_string(p) + " WB holds " +
                            std::to_string(wb.size()) + " of " +
                            std::to_string(sys_.wb(p).capacity()));
        }
        for (std::size_t i = 0; i < wb.size(); ++i) {
            const auto &e = wb[i];
            if (!coherence::isDirty(e.state)) {
                log_.report("wb-dirty-only",
                            "proc " + std::to_string(p) + " WB entry " +
                                hexAddr(e.unitAddr) + " in state " +
                                coherence::stateName(e.state));
            }
            for (std::size_t j = i + 1; j < wb.size(); ++j) {
                if (wb[j].unitAddr == e.unitAddr) {
                    log_.report("wb-duplicate",
                                "proc " + std::to_string(p) +
                                    " WB holds " + hexAddr(e.unitAddr) +
                                    " twice");
                }
            }
            if (sys_.l2(p).probe(e.unitAddr).unitValid) {
                log_.report("wb-vs-l2",
                            "proc " + std::to_string(p) + " WB entry " +
                                hexAddr(e.unitAddr) +
                                " duplicates a valid L2 unit");
            }
            units[e.unitAddr].push_back({p, e.state, true});
        }

        // Inclusion: every L1 line backed by a valid L2 unit; writable
        // lines by writable (M/E) units; dirty lines must be writable.
        for (const auto &line : sys_.l1(p).validLineInfo()) {
            const auto l2 = sys_.l2(p).probe(line.lineAddr);
            if (!l2.unitValid) {
                log_.report("l1-inclusion",
                            "proc " + std::to_string(p) + " L1 line " +
                                hexAddr(line.lineAddr) +
                                " has no valid L2 unit");
                continue;
            }
            if (line.writable && !coherence::isWritable(l2.state)) {
                log_.report("l1-permission",
                            "proc " + std::to_string(p) +
                                " writable L1 line " + hexAddr(line.lineAddr) +
                                " over L2 state " +
                                coherence::stateName(l2.state));
            }
            if (line.dirty && !line.writable) {
                log_.report("l1-dirty-permission",
                            "proc " + std::to_string(p) +
                                " dirty but non-writable L1 line " +
                                hexAddr(line.lineAddr));
            }
        }
    }

    // Single-writer / single-owner across the whole machine.
    for (const auto &[addr, copies] : units) {
        unsigned exclusive = 0;  // M or E anywhere (L2 or WB)
        unsigned owned = 0;      // O anywhere
        for (const auto &c : copies) {
            if (c.state == State::Modified || c.state == State::Exclusive)
                ++exclusive;
            else if (c.state == State::Owned)
                ++owned;
        }
        if (exclusive > 1 || (exclusive == 1 && copies.size() > 1)) {
            std::string holders;
            for (const auto &c : copies) {
                holders += " p" + std::to_string(c.proc) + ":" +
                           coherence::stateName(c.state) +
                           (c.inWb ? "(wb)" : "");
            }
            log_.report("single-writer",
                        "unit " + hexAddr(addr) +
                            " has an M/E copy alongside others:" +
                            holders);
        }
        if (owned > 1) {
            log_.report("single-owner",
                        "unit " + hexAddr(addr) + " has " +
                            std::to_string(owned) + " Owned copies");
        }
    }
}

} // namespace jetty::verify
