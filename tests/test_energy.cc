/**
 * @file
 * Unit tests for the energy library: the SRAM array model's scaling
 * behaviour, CACTI-lite banking, cache-level energies, the Appendix-A
 * analytical model, the run-level accountant, and the Table 1 data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/accountant.hh"
#include "energy/analytical.hh"
#include "energy/cache_energy.hh"
#include "energy/sram_array.hh"
#include "energy/xeon_power.hh"

using namespace jetty::energy;

namespace
{
const Technology kTech = Technology::micron180();
}

TEST(SramArray, ReadEnergyPositive)
{
    SramArray a(64, 32, 1, kTech);
    EXPECT_GT(a.readEnergy(32), 0.0);
    EXPECT_GT(a.readEnergy(0), 0.0);
}

TEST(SramArray, ReadScalesWithColumns)
{
    SramArray narrow(256, 32, 1, kTech);
    SramArray wide(256, 256, 1, kTech);
    EXPECT_GT(wide.readEnergy(0), narrow.readEnergy(0) * 4);
}

TEST(SramArray, ReadScalesWithRows)
{
    SramArray small(64, 64, 1, kTech);
    SramArray tall(4096, 64, 1, kTech);
    EXPECT_GT(tall.readEnergy(0), small.readEnergy(0) * 4);
}

TEST(SramArray, BankingShortensBitlines)
{
    SramArray flat(4096, 64, 1, kTech);
    SramArray banked(4096, 64, 16, kTech);
    EXPECT_LT(banked.readEnergy(0), flat.readEnergy(0));
    EXPECT_EQ(banked.rowsPerBank(), 256u);
}

TEST(SramArray, OutputDriversCost)
{
    SramArray a(64, 64, 1, kTech);
    EXPECT_GT(a.readEnergy(64), a.readEnergy(0));
}

TEST(SramArray, WriteMoreExpensiveThanReadPerBit)
{
    // Full-swing drive beats the sensed read swing for the same columns.
    SramArray a(256, 64, 1, kTech);
    EXPECT_GT(a.writeEnergy(64), a.readEnergy(0));
}

TEST(SramArray, OptimalBanksBounded)
{
    const unsigned banks = SramArray::optimalBanks(8192, 64, kTech, 64);
    EXPECT_GE(banks, 1u);
    EXPECT_LE(banks, 64u);
    // Large arrays want banking.
    EXPECT_GT(banks, 1u);
}

TEST(SramArray, OptimalBanksIsOptimal)
{
    const unsigned best = SramArray::optimalBanks(8192, 64, kTech, 64);
    const double best_e = SramArray(8192, 64, best, kTech).readEnergy(0);
    for (unsigned b = 1; b <= 64; b *= 2) {
        if (b >= 8192)
            break;
        EXPECT_LE(best_e, SramArray(8192, 64, b, kTech).readEnergy(0));
    }
}

TEST(SramArray, TinyArrayPrefersFewBanks)
{
    EXPECT_LE(SramArray::optimalBanks(32, 32, kTech, 64), 4u);
}

TEST(SramArray, BitsAccount)
{
    SramArray a(128, 16, 2, kTech);
    EXPECT_EQ(a.bits(), 128u * 16u);
}

TEST(CacheGeometry, TagBits)
{
    CacheGeometry g;
    g.sizeBytes = 1 << 20;
    g.assoc = 4;
    g.blockBytes = 64;
    g.physAddrBits = 36;
    // 4096 sets -> 12 index bits, 6 offset bits -> 18 tag bits.
    EXPECT_EQ(g.sets(), 4096u);
    EXPECT_EQ(g.tagBits(), 18u);
    EXPECT_EQ(g.unitBytes(), 32u);
}

TEST(CacheGeometryDeathTest, ZeroSetGeometryIsRejectedDescriptively)
{
    // The silent-truncation trap: a capacity below one full set used to
    // integer-divide to zero sets and divide by zero downstream. It
    // must now fail at model construction with a descriptive error.
    CacheGeometry geom;
    geom.sizeBytes = 128;  // < blockBytes * assoc below
    geom.blockBytes = 64;
    geom.assoc = 4;
    EXPECT_EXIT(CacheEnergyModel{geom}, ::testing::ExitedWithCode(1),
                "zero sets");
}

TEST(CacheGeometryDeathTest, TruncatingSetCountIsRejected)
{
    CacheGeometry geom;
    geom.sizeBytes = 1000;  // not a multiple of 64 * 1
    geom.blockBytes = 64;
    geom.assoc = 1;
    EXPECT_EXIT(CacheEnergyModel{geom}, ::testing::ExitedWithCode(1),
                "truncate");
}

TEST(CacheGeometryDeathTest, NonPowerOfTwoSetCountIsRejected)
{
    CacheGeometry geom;
    geom.sizeBytes = 3 * 64;  // 3 sets
    geom.blockBytes = 64;
    geom.assoc = 1;
    EXPECT_EXIT(CacheEnergyModel{geom}, ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(CacheGeometryDeathTest, ZeroFieldsAndBadSubblocksRejected)
{
    CacheGeometry zero_assoc;
    zero_assoc.assoc = 0;
    EXPECT_EXIT(CacheEnergyModel{zero_assoc},
                ::testing::ExitedWithCode(1), "non-zero");

    CacheGeometry bad_sub;
    bad_sub.subblocks = 3;  // does not divide 64
    EXPECT_EXIT(CacheEnergyModel{bad_sub}, ::testing::ExitedWithCode(1),
                "evenly divide");
}

TEST(CacheGeometry, SingleSetOrganizationIsValid)
{
    // sizeBytes == blockBytes * assoc is one (fully associative) set —
    // legal, and the model must build without tripping validation.
    CacheGeometry geom;
    geom.sizeBytes = 64 * 4;
    geom.blockBytes = 64;
    geom.assoc = 4;
    geom.subblocks = 2;
    ASSERT_EQ(geom.sets(), 1u);
    const CacheEnergyModel model(geom);
    EXPECT_GT(model.energies().tagRead, 0.0);
    EXPECT_GT(model.energies().dataReadUnit, 0.0);
}

TEST(CacheEnergyModel, AllEnergiesPositive)
{
    CacheGeometry g;
    CacheEnergyModel m(g);
    EXPECT_GT(m.energies().tagRead, 0.0);
    EXPECT_GT(m.energies().tagWrite, 0.0);
    EXPECT_GT(m.energies().dataReadUnit, 0.0);
    EXPECT_GT(m.energies().dataWriteUnit, 0.0);
}

TEST(CacheEnergyModel, JettyMuchCheaperThanL2Tags)
{
    // Section 2.2's premise: a JETTY probe is a small fraction of an L2
    // tag probe. The largest IJ p-bit array is a 32x32 register file.
    CacheGeometry g;
    g.assoc = 4;
    CacheEnergyModel l2(g);
    SramArray pbit(32, 32, 1, kTech);
    EXPECT_LT(pbit.readEnergy(1) * 4, 0.25 * l2.energies().tagRead);
}

TEST(CacheEnergyModel, ParallelReadsAllWays)
{
    CacheGeometry g;
    g.assoc = 4;
    CacheEnergyModel m(g);
    EXPECT_DOUBLE_EQ(m.dataReadAllWays(), 4 * m.energies().dataReadUnit);
}

TEST(CacheEnergyModel, SmallerBlocksCheaperData)
{
    CacheGeometry g32, g64;
    g32.blockBytes = 32;
    g32.subblocks = 1;
    g64.blockBytes = 64;
    g64.subblocks = 1;
    g32.assoc = g64.assoc = 4;
    CacheEnergyModel m32(g32), m64(g64);
    EXPECT_LT(m32.energies().dataReadUnit, m64.energies().dataReadUnit);
}

TEST(Analytical, AppendixAEquations)
{
    // Hand-checked point: TAG=1, DATA=2, Ncpu=4, L=0.5, R=0.1.
    AnalyticalParams p;
    p.tagEnergy = 1.0;
    p.dataEnergy = 2.0;
    p.ncpu = 4;
    AnalyticalSnoopModel m(p);
    const auto r = m.evaluate(0.5, 0.1);
    EXPECT_NEAR(r.tagSnoopMiss, 1.35, 1e-9);
    EXPECT_NEAR(r.snoopEnergy, 1.5, 1e-9);
    EXPECT_NEAR(r.dataEnergy, 2.3, 1e-9);
    EXPECT_NEAR(r.tagAll, 3.0, 1e-9);
    EXPECT_NEAR(r.snoopMissFraction, 1.35 / 5.3, 1e-9);
}

TEST(Analytical, ZeroAtFullLocalHit)
{
    AnalyticalParams p{1.0, 2.0, 4};
    AnalyticalSnoopModel m(p);
    EXPECT_DOUBLE_EQ(m.evaluate(1.0, 0.0).snoopMissFraction, 0.0);
}

TEST(Analytical, MonotoneInLocalHitRate)
{
    const auto m = AnalyticalSnoopModel::forCache(CacheGeometry{}, 4);
    double prev = 1.0;
    for (double l = 0.0; l <= 1.0; l += 0.1) {
        const double f = m.evaluate(l, 0.1).snoopMissFraction;
        EXPECT_LE(f, prev + 1e-12);
        prev = f;
    }
}

TEST(Analytical, MonotoneInRemoteHitRate)
{
    const auto m = AnalyticalSnoopModel::forCache(CacheGeometry{}, 4);
    double prev = 1.0;
    for (double r = 0.0; r <= 0.9; r += 0.1) {
        const double f = m.evaluate(0.5, r).snoopMissFraction;
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(Analytical, PaperOperatingPoint)
{
    // Section 2.1: ~33% at L=0.5, R=0.1 for 1MB 4-way 32B blocks.
    CacheGeometry g;
    g.blockBytes = 32;
    g.subblocks = 1;
    g.assoc = 4;
    const auto m = AnalyticalSnoopModel::forCache(g, 4);
    const double f = m.evaluate(0.5, 0.1).snoopMissFraction;
    EXPECT_GT(f, 0.25);
    EXPECT_LT(f, 0.45);
}

TEST(Analytical, MoreProcessorsMoreSnoopEnergy)
{
    CacheGeometry g;
    const auto m4 = AnalyticalSnoopModel::forCache(g, 4);
    const auto m8 = AnalyticalSnoopModel::forCache(g, 8);
    EXPECT_GT(m8.evaluate(0.5, 0.1).snoopMissFraction,
              m4.evaluate(0.5, 0.1).snoopMissFraction);
}

namespace
{

L2Traffic
sampleTraffic()
{
    L2Traffic t;
    t.localTagProbes = 1000;
    t.localTagUpdates = 300;
    t.localDataReads = 700;
    t.localDataWrites = 400;
    t.snoopTagProbes = 2000;
    t.snoopTagUpdates = 50;
    t.snoopDataReads = 60;
    return t;
}

} // namespace

TEST(Accountant, BaselinePositiveAndSplit)
{
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto b = acc.baseline(sampleTraffic(), AccessMode::Serial);
    EXPECT_GT(b.localEnergy, 0.0);
    EXPECT_GT(b.snoopEnergy, 0.0);
    EXPECT_DOUBLE_EQ(b.filterEnergy, 0.0);
    EXPECT_DOUBLE_EQ(b.total(), b.localEnergy + b.snoopEnergy);
}

TEST(Accountant, ParallelCostsMore)
{
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto s = acc.baseline(sampleTraffic(), AccessMode::Serial);
    const auto p = acc.baseline(sampleTraffic(), AccessMode::Parallel);
    EXPECT_GT(p.total(), s.total());
    EXPECT_GT(p.snoopEnergy, s.snoopEnergy);
}

TEST(Accountant, PerfectFreeFilterSavesAllSnoopTagEnergy)
{
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto t = sampleTraffic();
    FilterTraffic f;
    f.probes = t.snoopTagProbes;
    f.filtered = t.snoopTagProbes;  // filters everything
    const auto base = acc.baseline(t, AccessMode::Serial);
    const auto with =
        acc.withFilter(t, AccessMode::Serial, f, FilterEnergyCosts{});
    EXPECT_NEAR(with.snoopEnergy,
                base.snoopEnergy -
                    static_cast<double>(t.snoopTagProbes) *
                        m.energies().tagRead,
                1e-18);
    EXPECT_GT(EnergyAccountant::snoopReductionPct(base, with), 80.0);
}

TEST(Accountant, UselessFilterCostsEnergy)
{
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto t = sampleTraffic();
    FilterTraffic f;
    f.probes = t.snoopTagProbes;
    f.filtered = 0;
    FilterEnergyCosts costs;
    costs.probe = 1e-12;
    const auto base = acc.baseline(t, AccessMode::Serial);
    const auto with = acc.withFilter(t, AccessMode::Serial, f, costs);
    EXPECT_LT(EnergyAccountant::snoopReductionPct(base, with), 0.0);
    EXPECT_LT(EnergyAccountant::totalReductionPct(base, with), 0.0);
}

TEST(Accountant, UpdateCostsCharged)
{
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto t = sampleTraffic();
    FilterTraffic f;
    f.fillUpdates = 100;
    f.evictUpdates = 50;
    f.snoopAllocs = 10;
    FilterEnergyCosts costs;
    costs.fillUpdate = 1e-12;
    costs.evictUpdate = 2e-12;
    costs.snoopAlloc = 3e-12;
    const auto with = acc.withFilter(t, AccessMode::Serial, f, costs);
    EXPECT_NEAR(with.filterEnergy, 100 * 1e-12 + 50 * 2e-12 + 10 * 3e-12,
                1e-20);
}

TEST(Accountant, PerBusSnoopEnergyIsAnExactDecomposition)
{
    CacheGeometry geom;
    const CacheEnergyModel model(geom);
    const EnergyAccountant accountant(model);

    // A run whose snoop probes were routed over four buses.
    const std::vector<std::uint64_t> per_bus = {4000, 3000, 2000, 1000};
    L2Traffic t;
    t.snoopTagProbes = 10000;  // == sum(per_bus)

    for (const auto mode : {AccessMode::Serial, AccessMode::Parallel}) {
        const auto split = accountant.perBusSnoopEnergy(per_bus, mode);
        ASSERT_EQ(split.size(), per_bus.size());
        double total = 0;
        for (std::size_t b = 0; b < split.size(); ++b) {
            EXPECT_GT(split[b], 0.0) << b;
            total += split[b];
        }
        // The per-bus split sums exactly to the probe share of the
        // baseline snoop energy (the remaining snoop terms — state
        // updates, supplies — are not probe-routed).
        L2Traffic probes_only;
        probes_only.snoopTagProbes = t.snoopTagProbes;
        const auto base = accountant.baseline(probes_only, mode);
        EXPECT_NEAR(total, base.snoopEnergy, base.snoopEnergy * 1e-12);
        // Shares scale with occupancy.
        EXPECT_NEAR(split[0], 4.0 * split[3], split[0] * 1e-9);
    }
}

TEST(Accountant, TrafficMerge)
{
    L2Traffic a = sampleTraffic(), b = sampleTraffic();
    a.merge(b);
    EXPECT_EQ(a.localTagProbes, 2000u);
    EXPECT_EQ(a.snoopTagProbes, 4000u);
    EXPECT_EQ(a.allTagAccesses(), 2 * (1000u + 300u + 2000u + 50u));
}

TEST(Accountant, ZeroReferenceRunIsAllZerosAndNoNan)
{
    // A run that retired nothing: every energy is exactly zero and the
    // reduction percentages hit their guarded division-by-zero paths.
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const L2Traffic none{};
    const FilterTraffic idle{};
    for (const auto mode : {AccessMode::Serial, AccessMode::Parallel}) {
        const auto base = acc.baseline(none, mode);
        EXPECT_DOUBLE_EQ(base.localEnergy, 0.0);
        EXPECT_DOUBLE_EQ(base.snoopEnergy, 0.0);
        EXPECT_DOUBLE_EQ(base.total(), 0.0);
        const auto with = acc.withFilter(none, mode, idle,
                                         FilterEnergyCosts{});
        EXPECT_DOUBLE_EQ(with.total(), 0.0);
        EXPECT_DOUBLE_EQ(EnergyAccountant::snoopReductionPct(base, with),
                         0.0);
        EXPECT_DOUBLE_EQ(EnergyAccountant::totalReductionPct(base, with),
                         0.0);
    }
}

TEST(Accountant, FilterDisabledRunEqualsBaseline)
{
    // A NULL-style filter (nothing filtered, zero per-event costs) must
    // reproduce the baseline bit-for-bit in both access modes — the
    // accountant may not charge phantom energy for a disabled filter.
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);
    const auto t = sampleTraffic();
    FilterTraffic f;
    f.probes = t.snoopTagProbes;  // probed, never filters
    for (const auto mode : {AccessMode::Serial, AccessMode::Parallel}) {
        const auto base = acc.baseline(t, mode);
        const auto with = acc.withFilter(t, mode, f, FilterEnergyCosts{});
        EXPECT_DOUBLE_EQ(with.localEnergy, base.localEnergy);
        EXPECT_DOUBLE_EQ(with.snoopEnergy, base.snoopEnergy);
        EXPECT_DOUBLE_EQ(with.filterEnergy, 0.0);
        EXPECT_DOUBLE_EQ(EnergyAccountant::snoopReductionPct(base, with),
                         0.0);
        EXPECT_DOUBLE_EQ(EnergyAccountant::totalReductionPct(base, with),
                         0.0);
    }
}

TEST(Accountant, BillionsOfEventsAccumulateWithoutOverflow)
{
    // Counts far beyond 2^32: the u64 counters must merge without
    // wrapping and the double-domain energies must stay finite and
    // exactly linear in the counts.
    CacheEnergyModel m{CacheGeometry{}};
    EnergyAccountant acc(m);

    L2Traffic big;
    big.localTagProbes = 5'000'000'000ULL;
    big.localTagUpdates = 3'000'000'000ULL;
    big.localDataReads = 4'000'000'000ULL;
    big.localDataWrites = 2'000'000'000ULL;
    big.snoopTagProbes = 6'000'000'000ULL;
    big.snoopTagUpdates = 1'500'000'000ULL;
    big.snoopDataReads = 1'000'000'000ULL;

    L2Traffic doubled = big;
    doubled.merge(big);
    EXPECT_EQ(doubled.localTagProbes, 10'000'000'000ULL);
    EXPECT_EQ(doubled.snoopTagProbes, 12'000'000'000ULL);
    EXPECT_EQ(doubled.allTagAccesses(),
              2 * (5'000'000'000ULL + 3'000'000'000ULL +
                   6'000'000'000ULL + 1'500'000'000ULL));

    for (const auto mode : {AccessMode::Serial, AccessMode::Parallel}) {
        const auto one = acc.baseline(big, mode);
        const auto two = acc.baseline(doubled, mode);
        EXPECT_TRUE(std::isfinite(one.total()));
        EXPECT_GT(one.total(), 0.0);
        EXPECT_NEAR(two.total(), 2.0 * one.total(),
                    1e-9 * two.total());
    }

    // Filter bookkeeping at the same scale.
    FilterTraffic f;
    f.probes = big.snoopTagProbes;
    f.filtered = 3'000'000'000ULL;
    f.snoopAllocs = 2'000'000'000ULL;
    f.fillUpdates = 2'500'000'000ULL;
    f.evictUpdates = 2'400'000'000ULL;
    FilterEnergyCosts costs;
    costs.probe = 1e-13;
    costs.snoopAlloc = 2e-13;
    costs.fillUpdate = 3e-13;
    costs.evictUpdate = 4e-13;
    const auto with = acc.withFilter(big, AccessMode::Serial, f, costs);
    EXPECT_TRUE(std::isfinite(with.total()));
    EXPECT_NEAR(with.filterEnergy,
                6e9 * 1e-13 + 2e9 * 2e-13 + 2.5e9 * 3e-13 + 2.4e9 * 4e-13,
                1e-12);
    // Filtering must still strictly reduce snoop energy at this scale.
    const auto base = acc.baseline(big, AccessMode::Serial);
    EXPECT_LT(with.snoopEnergy, base.snoopEnergy);
}

TEST(XeonTable, MatchesPaperRatios)
{
    // Paper Table 1 derived columns: 14%/16%, 23%/28%, 34%/43%.
    EXPECT_NEAR(xeonPowerTable[0].l2FractionWithPads(), 0.14, 0.02);
    EXPECT_NEAR(xeonPowerTable[0].l2FractionWithoutPads(), 0.16, 0.01);
    EXPECT_NEAR(xeonPowerTable[1].l2FractionWithPads(), 0.23, 0.01);
    EXPECT_NEAR(xeonPowerTable[1].l2FractionWithoutPads(), 0.28, 0.01);
    EXPECT_NEAR(xeonPowerTable[2].l2FractionWithPads(), 0.34, 0.01);
    EXPECT_NEAR(xeonPowerTable[2].l2FractionWithoutPads(), 0.43, 0.015);
}
