/**
 * @file
 * The golden reference model of the differential verification subsystem.
 *
 * GoldenSmp is a second, independent implementation of the simulated
 * machine: a map-based, unbatched, filter-free MOESI SMP that replays any
 * set of TraceSources one reference at a time and exposes the global
 * per-unit coherence state. It deliberately has none of the fast
 * machinery the real SmpSystem accumulated — no delivery batching, no
 * inlined L1 fast path, no listener chains, no filter banks, no
 * statistics plumbing — and it restates the MOESI snooper rules locally
 * instead of calling coherence::snoopTransition, so a bug in either
 * implementation shows up as a state divergence instead of being
 * faithfully mirrored.
 *
 * The model is behaviourally exact, not approximate: replacement (LRU
 * with the same clock-advance points), subblocked tags, write-back
 * buffer FIFO/forced-drain order and inclusion enforcement all match the
 * documented contract of the real system, so after replaying the same
 * traces the two machines must agree bit-exactly on every valid L1 line
 * (with permission/dirty flags), every resident L2 tag, every valid
 * coherence unit's MOESI state, and the write-back buffers' contents in
 * order. snapshotOf()/diffSnapshots() perform that comparison.
 */

#ifndef JETTY_VERIFY_GOLDEN_SMP_HH
#define JETTY_VERIFY_GOLDEN_SMP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "coherence/moesi.hh"
#include "mem/writeback_buffer.hh"
#include "sim/smp_system.hh"
#include "trace/trace_source.hh"
#include "util/types.hh"

namespace jetty::verify
{

/** One processor's externally visible cache state, address-sorted. */
struct ProcSnapshot
{
    std::vector<mem::L1LineInfo> l1;   //!< valid lines + flags
    std::vector<Addr> l2Blocks;        //!< resident tags (incl. unit-empty)
    std::vector<mem::L2UnitInfo> l2;   //!< valid units + MOESI states
    std::vector<mem::WbEntry> wb;      //!< write-back buffer, FIFO order
};

/** The whole machine's externally visible state. */
struct StateSnapshot
{
    std::vector<ProcSnapshot> procs;
};

/** Capture the real system's state in snapshot form. */
StateSnapshot snapshotOf(const sim::SmpSystem &sys);

/**
 * Compare two snapshots; an empty string means bit-exact agreement,
 * anything else describes the first few divergences (processor, address,
 * expected vs. actual).
 */
std::string diffSnapshots(const StateSnapshot &golden,
                          const StateSnapshot &actual);

/** The golden machine. Accepts any SmpConfig the real system accepts;
 *  filter specs are ignored (the golden model is filter-free). */
class GoldenSmp
{
  public:
    explicit GoldenSmp(const sim::SmpConfig &cfg);

    /** Attach one reference stream per processor (size must match). */
    void attachSources(std::vector<trace::TraceSourcePtr> sources);

    /** One round-robin sweep — each live processor issues one reference,
     *  in ascending processor order, exactly SmpSystem's quantum.
     *  @return false once every stream is exhausted. */
    bool step();

    /** Replay until all streams are exhausted. */
    void run();

    /** Drive one reference directly. */
    void access(ProcId p, AccessType type, Addr addr);

    /** The machine state in comparable form. */
    StateSnapshot snapshot() const;

    /** References replayed so far. */
    std::uint64_t references() const { return references_; }

    /** Per-processor L2 state of one unit (Invalid when absent) — the
     *  per-block global state view the invariant catalogue audits. */
    std::vector<coherence::State> globalUnitState(Addr unitAddr) const;

    /**
     * Transactions the golden machine routed to each logical snoop bus,
     * using its own restatement of the address interleave (block index
     * by integer division, modulo the configured snoopBuses). The real
     * system's SimStats::perBus transaction counts must match this
     * exactly for any bus count — the differential check that the
     * split interconnect routes without changing what is broadcast.
     */
    const std::vector<std::uint64_t> &busTransactions() const
    {
        return busTransactions_;
    }

    /** The configuration the machine was built with. */
    const sim::SmpConfig &config() const { return cfg_; }

  private:
    struct L1Line
    {
        Addr lineAddr = 0;
        bool writable = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    struct L2Block
    {
        Addr blockAddr = 0;
        std::uint64_t lastUse = 0;
        std::vector<coherence::State> units;
    };

    struct Proc
    {
        /** L1 set index -> the set's valid lines (at most l1 assoc).
         *  Ordered maps, not unordered: snapshot() iterates these, and
         *  the determinism contract (jobs=1 vs jobs=N bit-identity,
         *  enforced mechanically by tools/jetty_lint) bans hash-order
         *  iteration in the verify layer. */
        std::map<std::uint64_t, std::vector<L1Line>> l1;

        /** L2 set index -> the set's resident blocks (at most l2 assoc). */
        std::map<std::uint64_t, std::vector<L2Block>> l2;

        std::deque<mem::WbEntry> wb;
        std::uint64_t l1Clock = 0;
        std::uint64_t l2Clock = 0;

        trace::TraceSourcePtr source;
        bool done = true;
    };

    // -- geometry helpers ------------------------------------------------
    Addr unitAlign(Addr a) const { return a & ~unitMask_; }
    Addr blockAlign(Addr a) const { return a & ~blockMask_; }
    std::uint64_t l1SetOf(Addr a) const;
    std::uint64_t l2SetOf(Addr a) const;
    unsigned unitIndexOf(Addr a) const;

    // -- structure lookups ----------------------------------------------
    L1Line *findL1(Proc &n, Addr lineAddr);
    L2Block *findL2(Proc &n, Addr blockAddr);
    const L2Block *findL2(const Proc &n, Addr blockAddr) const;
    coherence::State l2UnitState(const Proc &n, Addr unitAddr) const;

    // -- protocol steps --------------------------------------------------
    /** Snoop every other node; @return the number of remote copies. */
    unsigned broadcast(ProcId requester, coherence::BusOp op, Addr unit);

    /** Local L2 miss service: WB reclaim or bus fetch + fill/victims. */
    coherence::State fetchUnit(ProcId p, Addr unit, bool forWrite);

    /** Fill @p unit into node @p p's L2 (allocating/evicting a block). */
    void l2Fill(ProcId p, Addr unit, coherence::State state);

    /** Fill @p unit's line into the L1, writing back a dirty victim. */
    void l1Fill(ProcId p, Addr unit, bool writable);

    /** Inclusion: drop the L1 line backing @p unit, if any. */
    void dropL1(Proc &n, Addr unit);

    /** Queue a dirty L2 victim in the WB (forced drain when full). */
    void pushVictim(ProcId p, Addr unitAddr, coherence::State state);

    sim::SmpConfig cfg_;
    std::vector<Proc> procs_;
    std::uint64_t references_ = 0;
    std::vector<std::uint64_t> busTransactions_;

    std::uint64_t unitMask_ = 0;
    std::uint64_t blockMask_ = 0;
    unsigned l1OffsetBits_ = 0;
    unsigned l1IndexBits_ = 0;
    unsigned l2OffsetBits_ = 0;
    unsigned l2IndexBits_ = 0;
    unsigned unitOffsetBits_ = 0;
    unsigned subblockBits_ = 0;
};

} // namespace jetty::verify

#endif // JETTY_VERIFY_GOLDEN_SMP_HH
