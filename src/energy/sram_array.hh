/**
 * @file
 * Per-access energy model of a banked SRAM array, in the spirit of
 * Kamble & Ghose, "Analytical Energy Dissipation Models for Low Power
 * Caches" (ISLPED'97): switching energy on bitlines, wordlines, decoders,
 * sense amplifiers and output drivers.
 */

#ifndef JETTY_ENERGY_SRAM_ARRAY_HH
#define JETTY_ENERGY_SRAM_ARRAY_HH

#include <cstdint>

#include "energy/technology.hh"

namespace jetty::energy
{

/**
 * A logical SRAM array of rows x cols bits, implemented as @c banks
 * identical sub-banks stacked along the rows dimension. One bank is
 * activated per access; all banks pay a small control overhead.
 */
class SramArray
{
  public:
    /**
     * @param rows  logical number of rows (entries).
     * @param cols  bits per row.
     * @param banks number of sub-banks (power of two, divides rows
     *              conceptually; a partial last bank is fine).
     * @param tech  technology parameters.
     */
    SramArray(std::uint64_t rows, std::uint64_t cols, unsigned banks,
              const Technology &tech);

    /**
     * Energy of one read access (J). All @c cols bitline pairs of the
     * active bank are precharged and partially discharged; @p bitsOut bits
     * are then transported to the consumer through output drivers.
     */
    double readEnergy(unsigned bitsOut) const;

    /**
     * Energy of one write access (J): full-swing drive of @p bitsWritten
     * bitline pairs plus wordline/decoder overheads.
     */
    double writeEnergy(unsigned bitsWritten) const;

    /** Rows in one bank (ceiling division). */
    std::uint64_t rowsPerBank() const { return rowsPerBank_; }

    /** Storage capacity in bits. */
    std::uint64_t bits() const { return rows_ * cols_; }

    /**
     * CACTI-lite: choose the power-of-two bank count in [1, maxBanks] that
     * minimizes read energy for an array of the given shape. Models the
     * trade-off between shorter bitlines (less precharge energy) and
     * replicated bank control.
     */
    static unsigned optimalBanks(std::uint64_t rows, std::uint64_t cols,
                                 const Technology &tech,
                                 unsigned maxBanks = 64,
                                 unsigned bitsOut = 0);

  private:
    /** Capacitance of one bitline within a bank (F). */
    double bitlineCap() const;

    std::uint64_t rows_;
    std::uint64_t cols_;
    unsigned banks_;
    std::uint64_t rowsPerBank_;
    Technology tech_;
};

} // namespace jetty::energy

#endif // JETTY_ENERGY_SRAM_ARRAY_HH
