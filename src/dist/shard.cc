#include "dist/shard.hh"

#include <utility>

#include "experiments/run_result_json.hh"

namespace jetty::dist
{

namespace
{

// Field lists shared by the writer and the validating reader, keyed by
// (member, reader kind), so the two directions cannot drift apart — and
// so jetty_lint can cross-check the lists against the structs.
#define JETTY_SHARD_REQUEST_FIELDS(X)                                        \
    X(shardId, u64)                                                          \
    X(attempt, u64)                                                          \
    X(cacheKey, str)

#define JETTY_SHARD_RESPONSE_FIELDS(X)                                       \
    X(shardId, u64)                                                          \
    X(attempt, u64)                                                          \
    X(ok, boolean)                                                           \
    X(error, str)                                                            \
    X(simulated, u64)                                                        \
    X(diskHits, u64)                                                         \
    X(memHits, u64)                                                          \
    X(wallSeconds, dbl)

/** Validating field reader with dotted-path diagnostics: records the
 *  first failure and turns every later access into a no-op. */
struct Reader
{
    std::string path;  //!< message name, e.g. "shard_response"
    std::string err;

    explicit Reader(std::string p) : path(std::move(p)) {}

    bool ok() const { return err.empty(); }

    void
    fail(const std::string &field, const std::string &what)
    {
        if (err.empty())
            err = path + "." + field + ": " + what;
    }

    const json::Value *
    get(const json::Value &o, const char *key)
    {
        if (!err.empty())
            return nullptr;
        const json::Value *v = o.isObject() ? o.find(key) : nullptr;
        if (!v)
            fail(key, "missing field");
        return v;
    }

    void
    u64(const json::Value &o, const char *key, std::uint64_t &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isNumber() || !v->fitsU64()) {
            fail(key, "not a u64");
            return;
        }
        out = v->asU64();
    }

    void
    dbl(const json::Value &o, const char *key, double &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isNumber()) {
            fail(key, "not a number");
            return;
        }
        out = v->asDouble();
    }

    void
    boolean(const json::Value &o, const char *key, bool &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isBool()) {
            fail(key, "not a bool");
            return;
        }
        out = v->asBool();
    }

    void
    str(const json::Value &o, const char *key, std::string &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isString()) {
            fail(key, "not a string");
            return;
        }
        out = v->asString();
    }
};

/** Envelope preamble shared by every message type. @return "" or the
 *  dotted-path diagnostic. */
std::string
checkEnvelope(const json::Value &v, const char *type)
{
    const std::string path = type;
    if (!v.isObject())
        return path + ": not a JSON object";
    const json::Value *ver = v.find("jetty_shard");
    if (!ver || !ver->isNumber() || !ver->fitsU64())
        return path + ".jetty_shard: missing version";
    if (ver->asU64() != kShardVersion) {
        return path + ".jetty_shard: version " +
               std::to_string(ver->asU64()) +
               " not supported (this build speaks " +
               std::to_string(kShardVersion) + ")";
    }
    const json::Value *ty = v.find("type");
    if (!ty || !ty->isString() || ty->asString() != type) {
        return path + ".type: expected '" + std::string(type) + "', got " +
               (ty && ty->isString() ? "'" + ty->asString() + "'"
                                     : std::string("none"));
    }
    return "";
}

json::Value
envelope(const char *type)
{
    json::Value v = json::Value::object();
    v.set("jetty_shard", kShardVersion);
    v.set("type", type);
    return v;
}

} // namespace

std::string
cellCacheKey(const experiments::RunRequest &req)
{
    const double scale =
        req.accessScale > 0 ? req.accessScale : experiments::defaultScale();
    return api::runCacheKey(req, scale);
}

api::ExperimentSpec
shardSpec(const api::ExperimentSpec &sweep,
          const std::vector<std::string> &canonicalFilters,
          const experiments::RunRequest &req)
{
    api::ExperimentSpec s = sweep;
    s.machine.procs = req.variant.nprocs;
    s.machine.buses = req.variant.snoopBuses;
    s.sweepProcs = {req.variant.nprocs};
    s.sweepBuses = {req.variant.snoopBuses};
    s.filters = canonicalFilters;
    if (sweep.traceFiles.empty())
        s.apps = {req.app.abbrev};
    return s;
}

std::string
shardMessageType(const json::Value &v)
{
    if (!v.isObject())
        return "";
    const json::Value *ty = v.find("type");
    return ty && ty->isString() ? ty->asString() : "";
}

json::Value
shardRequestToJson(const ShardRequest &req)
{
    json::Value v = envelope("shard_request");
#define X(f, kind) v.set(#f, req.f);
    JETTY_SHARD_REQUEST_FIELDS(X)
#undef X
    v.set("spec", req.spec);
    return v;
}

json::Value
shardStartedToJson(std::uint64_t shardId, std::uint64_t attempt)
{
    json::Value v = envelope("shard_started");
    v.set("shardId", shardId);
    v.set("attempt", attempt);
    return v;
}

json::Value
shardResponseToJson(const ShardResponse &resp)
{
    json::Value v = envelope("shard_response");
#define X(f, kind) v.set(#f, resp.f);
    JETTY_SHARD_RESPONSE_FIELDS(X)
#undef X
    json::Value results = json::Value::array();
    for (const auto &cell : resp.results) {
        json::Value c = json::Value::object();
        c.set("key", cell.key);
        c.set("result", experiments::runResultToJson(cell.result));
        results.push(std::move(c));
    }
    v.set("results", std::move(results));
    return v;
}

std::string
shardRequestFromJson(const json::Value &v, ShardRequest &out)
{
    std::string err = checkEnvelope(v, "shard_request");
    if (!err.empty())
        return err;
    Reader rd("shard_request");
    ShardRequest req;
#define X(f, kind) rd.kind(v, #f, req.f);
    JETTY_SHARD_REQUEST_FIELDS(X)
#undef X
    const json::Value *spec = rd.get(v, "spec");
    if (spec && !spec->isObject())
        rd.fail("spec", "not an object");
    if (!rd.ok())
        return rd.err;
    req.spec = *spec;
    out = std::move(req);
    return "";
}

std::string
shardResponseFromJson(const json::Value &v, ShardResponse &out)
{
    std::string err = checkEnvelope(v, "shard_response");
    if (!err.empty())
        return err;
    Reader rd("shard_response");
    ShardResponse resp;
#define X(f, kind) rd.kind(v, #f, resp.f);
    JETTY_SHARD_RESPONSE_FIELDS(X)
#undef X
    const json::Value *results = rd.get(v, "results");
    if (results && !results->isArray())
        rd.fail("results", "not an array");
    if (!rd.ok())
        return rd.err;
    for (std::size_t i = 0; i < results->items().size(); ++i) {
        const json::Value &item = results->items()[i];
        const std::string at = "results[" + std::to_string(i) + "]";
        if (!item.isObject())
            return "shard_response." + at + ": not an object";
        ShardCell cell;
        const json::Value *key = item.find("key");
        if (!key || !key->isString())
            return "shard_response." + at + ".key: not a string";
        cell.key = key->asString();
        const json::Value *result = item.find("result");
        if (!result)
            return "shard_response." + at + ".result: missing field";
        err = experiments::runResultFromJson(*result, cell.result);
        if (!err.empty())
            return "shard_response." + at + ".result: " + err;
        resp.results.push_back(std::move(cell));
    }
    out = std::move(resp);
    return "";
}

} // namespace jetty::dist
