/**
 * @file
 * Quantifies Section 2.2's latency argument: JETTY sits in series with
 * the L2 tags, so unfiltered snoops pay one extra (sub-cycle) probe while
 * filtered snoops are answered early. Reports, per application, the
 * change in mean snoop-response latency and the worst-case addition as a
 * fraction of one bus cycle.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "sim/latency.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    const std::string best = "HJ(IJ-10x4x7,EJ-32x4)";
    experiments::SystemVariant variant;
    const auto runs = experiments::runAllApps(variant, {best},
                                              experiments::defaultScale());

    const sim::LatencyParams params;
    TextTable table;
    table.header({"App", "baseline (cyc)", "with JETTY (cyc)",
                  "mean change", "worst-case add (bus cycles)"});

    double avg_change = 0;
    for (const auto &run : runs) {
        const auto impact =
            sim::evaluateLatency(run.statsFor(best), params);
        avg_change += impact.meanChangePct();
        table.row({
            run.abbrev,
            TextTable::num(impact.baselineMeanCycles, 1),
            TextTable::num(impact.jettyMeanCycles, 1),
            TextTable::pct(impact.meanChangePct()),
            TextTable::num(impact.worstCaseBusCycleFraction(params), 3),
        });
    }
    table.row({"AVG", "", "",
               TextTable::pct(avg_change / static_cast<double>(runs.size())),
               ""});

    std::printf("Section 2.2: snoop-latency impact of %s\n"
                "(JETTY probe %.1f cycles, L2 tags %.1f cycles, bus %.0fx "
                "slower than the core)\n\n",
                best.c_str(), params.jettyCycles, params.l2TagCycles,
                params.busClockRatio);
    table.print();
    std::printf("\nPaper claim: no performance loss -- the serial JETTY "
                "probe is an insignificant\nfraction of snoop latency, and "
                "filtered snoops answer earlier than the tag\narray would "
                "have. A negative mean change confirms it.\n");
    return 0;
}
