/**
 * @file
 * Hybrid-JETTY (Section 3.3): an Include-JETTY and an Exclude-JETTY (or
 * Vector-Exclude-JETTY) probed in parallel; either component may filter a
 * snoop. Because the IJ acts as a first-line filter, EJ entries are only
 * allocated for snoop misses the IJ failed to catch, which is exactly the
 * stream delivered to onSnoopMiss().
 */

#ifndef JETTY_CORE_HYBRID_JETTY_HH
#define JETTY_CORE_HYBRID_JETTY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/snoop_filter.hh"

namespace jetty::filter
{

class IncludeJetty;
class ExcludeJetty;

/** The hybrid JETTY, composed of an include part and an exclude part. */
class HybridJetty : public SnoopFilter
{
  public:
    /**
     * @param includePart the IJ component (probed in parallel).
     * @param excludePart the EJ/VEJ component (allocates on IJ leaks).
     */
    HybridJetty(SnoopFilterPtr includePart, SnoopFilterPtr excludePart);

    bool probe(Addr unitAddr) override;
    void onSnoopMiss(Addr unitAddr, bool blockPresent) override;
    void onFill(Addr unitAddr) override;
    void onEvict(Addr unitAddr) override;
    void clear() override;

    StorageBreakdown storage() const override;
    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const override;
    std::string name() const override;

    /** Access to the components (for tests and ablation benches). */
    SnoopFilter &includePart() { return *include_; }
    SnoopFilter &excludePart() { return *exclude_; }

    /** Batched replay with devirtualized component calls for the
     *  canonical IJ+EJ composition; other compositions fall back to the
     *  generic walk. */
    void applyBatch(const BankEvent *evs, std::size_t n,
                    FilterStats &st) override;

  private:
    SnoopFilterPtr include_;
    SnoopFilterPtr exclude_;

    /** Concrete-typed views of the components when the hybrid is the
     *  paper's IJ+EJ shape (null otherwise), enabling direct calls in
     *  applyBatch. */
    IncludeJetty *ijTyped_ = nullptr;
    ExcludeJetty *ejTyped_ = nullptr;

    /** Reusable segment buffers for the segmented applyBatch. */
    std::vector<Addr> addrScratch_;
    std::vector<std::uint8_t> preScratch_;
};

} // namespace jetty::filter

#endif // JETTY_CORE_HYBRID_JETTY_HH
