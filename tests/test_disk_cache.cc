/**
 * @file
 * Tests for the RunCache's persistent tier (experiments/disk_cache.hh)
 * and its AppRunResult JSON payload (run_result_json.hh): lossless
 * round-trip, publish/lookup, the corrupt-entries-are-misses contract,
 * LRU eviction under a byte budget, cross-"process" reuse (tier 0
 * dropped via clear(), everything answered from disk), and a
 * multi-threaded subset/superset stress over the shared cache.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/disk_cache.hh"
#include "experiments/experiments.hh"
#include "experiments/run_result_json.hh"
#include "trace/apps.hh"
#include "util/json.hh"

using namespace jetty;
using experiments::AppRunResult;
using experiments::DiskCache;
using experiments::RunCache;
using experiments::RunRequest;

namespace
{

/** Fresh per-test cache root under the gtest temp dir. */
std::string
freshRoot(const std::string &name)
{
    const std::string root = ::testing::TempDir() + name;
    std::string cmd = "rm -rf '" + root + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "could not clear " << root;
    return root;
}

/** A small real simulation to serialize (deterministic). */
AppRunResult
sampleResult()
{
    experiments::SystemVariant variant;
    return experiments::runApp(trace::appByName("ff"), variant,
                               {"EJ-16x2", "IJ-8x4x7"}, 0.01);
}

RunRequest
sampleRequest(const char *app, std::vector<std::string> filters)
{
    RunRequest req;
    req.app = trace::appByName(app);
    req.filterSpecs = std::move(filters);
    req.accessScale = 0.01;
    return req;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace

TEST(RunResultJson, RoundTripIsLossless)
{
    const AppRunResult original = sampleResult();
    const json::Value encoded = experiments::runResultToJson(original);

    AppRunResult restored;
    const std::string err = experiments::runResultFromJson(encoded,
                                                           restored);
    ASSERT_EQ(err, "");

    // Value identity through a second encode: canonical text equality
    // covers every serialized counter and double at once.
    const json::Value reencoded = experiments::runResultToJson(restored);
    EXPECT_EQ(encoded.dumpCanonical(), reencoded.dumpCanonical());
    EXPECT_EQ(restored.appName, original.appName);
    EXPECT_EQ(restored.totalRefs, original.totalRefs);
    EXPECT_EQ(restored.simSeconds, original.simSeconds);
    EXPECT_EQ(restored.filterNames, original.filterNames);
    EXPECT_EQ(restored.stats.procs.size(), original.stats.procs.size());
}

TEST(RunResultJson, ReaderRejectsMalformedPayloads)
{
    AppRunResult out;
    EXPECT_NE(experiments::runResultFromJson(json::Value::object(), out),
              "");
    json::Value half = experiments::runResultToJson(sampleResult());
    half.set("totalRefs", "not a number");
    EXPECT_NE(experiments::runResultFromJson(half, out), "");
}

TEST(DiskCacheTest, PublishThenLookupRoundTrips)
{
    const std::string root = freshRoot("jetty_dc_roundtrip");
    DiskCache cache(root, experiments::kDefaultDiskBudgetBytes);

    const AppRunResult result = sampleResult();
    const std::set<std::string> covered = {"EJ-16x2", "IJ-8x4x7"};
    cache.publish("key-a", result, covered);

    AppRunResult got;
    std::set<std::string> gotCovered;
    ASSERT_TRUE(cache.lookup("key-a", got, gotCovered));
    EXPECT_EQ(gotCovered, covered);
    EXPECT_EQ(experiments::runResultToJson(got).dumpCanonical(),
              experiments::runResultToJson(result).dumpCanonical());

    // Unknown key: clean miss.
    EXPECT_FALSE(cache.lookup("key-b", got, gotCovered));
}

TEST(DiskCacheTest, CorruptEntriesAreEvictedMisses)
{
    const std::string root = freshRoot("jetty_dc_corrupt");
    DiskCache cache(root, experiments::kDefaultDiskBudgetBytes);
    const AppRunResult result = sampleResult();
    cache.publish("key-a", result, {"EJ-16x2"});
    const std::string file = root + "/" + DiskCache::entryFileFor("key-a");
    ASSERT_TRUE(fileExists(file));

    AppRunResult got;
    std::set<std::string> covered;

    // Truncated mid-file: miss, and the entry is unlinked.
    const std::string bytes = slurp(file);
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_FALSE(cache.lookup("key-a", got, covered));
    EXPECT_FALSE(fileExists(file));

    // Wrong envelope version: same contract.
    cache.publish("key-a", result, {"EJ-16x2"});
    {
        std::string err;
        json::Value v = json::parse(slurp(file), &err);
        ASSERT_EQ(err, "");
        v.set("jetty_cache", experiments::kDiskCacheVersion + 1);
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        const std::string text = v.dumpCanonical();
        out.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
    EXPECT_FALSE(cache.lookup("key-a", got, covered));
    EXPECT_FALSE(fileExists(file));

    // Filename collision (embedded key differs): miss, but the foreign
    // entry is left in place — it is some other key's valid data.
    cache.publish("key-a", result, {"EJ-16x2"});
    {
        std::string err;
        json::Value v = json::parse(slurp(file), &err);
        ASSERT_EQ(err, "");
        v.set("key", "some-other-key");
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        const std::string text = v.dumpCanonical();
        out.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
    EXPECT_FALSE(cache.lookup("key-a", got, covered));
    EXPECT_TRUE(fileExists(file));
}

TEST(DiskCacheTest, LruEvictionHonorsRecencyAndBudget)
{
    const std::string root = freshRoot("jetty_dc_lru");
    const AppRunResult result = sampleResult();
    const std::set<std::string> covered = {"EJ-16x2"};

    // Budget sized for roughly two entries of this payload, measured
    // from a real published entry (the envelope is pretty-printed, so
    // the canonical text undercounts).
    std::uint64_t entryBytes = 0;
    {
        DiskCache probe(root, experiments::kDefaultDiskBudgetBytes);
        probe.publish("probe", result, covered);
        struct stat st = {};
        ASSERT_EQ(::stat((root + "/" + DiskCache::entryFileFor("probe"))
                             .c_str(),
                         &st),
                  0);
        entryBytes = static_cast<std::uint64_t>(st.st_size);
    }
    freshRoot("jetty_dc_lru");
    DiskCache cache(root, entryBytes * 5 / 2);

    cache.publish("key-1", result, covered);
    cache.publish("key-2", result, covered);

    // Touch key-1 so key-2 becomes the least recently used...
    AppRunResult got;
    std::set<std::string> gotCovered;
    ASSERT_TRUE(cache.lookup("key-1", got, gotCovered));

    // ...then publishing key-3 must evict key-2, not key-1.
    cache.publish("key-3", result, covered);
    EXPECT_TRUE(cache.lookup("key-1", got, gotCovered));
    EXPECT_FALSE(cache.lookup("key-2", got, gotCovered));
    EXPECT_TRUE(cache.lookup("key-3", got, gotCovered));
}

TEST(DiskCacheTest, RebuildsFromDirectoryScanWhenIndexIsCorrupt)
{
    const std::string root = freshRoot("jetty_dc_index");
    const AppRunResult result = sampleResult();
    {
        DiskCache cache(root, experiments::kDefaultDiskBudgetBytes);
        cache.publish("key-a", result, {"EJ-16x2"});
    }
    {
        std::ofstream out(root + "/index.json",
                          std::ios::binary | std::ios::trunc);
        out << "{{{ not json";
    }
    DiskCache cache(root, experiments::kDefaultDiskBudgetBytes);
    AppRunResult got;
    std::set<std::string> covered;
    EXPECT_TRUE(cache.lookup("key-a", got, covered));
}

TEST(RunCacheDiskTier, FreshProcessAnswersEntirelyFromDisk)
{
    const std::string root = freshRoot("jetty_dc_process");
    auto &cache = RunCache::instance();
    cache.clear();
    cache.setDiskRoot(root);

    const std::vector<RunRequest> requests = {
        sampleRequest("lu", {"EJ-16x2", "IJ-8x4x7"}),
        sampleRequest("ff", {"EJ-16x2"}),
    };
    const auto first = experiments::runMany(requests);
    EXPECT_EQ(cache.simulations(), 2u);
    EXPECT_EQ(cache.diskHits(), 0u);

    // clear() models a fresh process: tier 0 and the digest memo are
    // gone, the disk tier survives.
    cache.clear();
    const auto second = experiments::runMany(requests);
    EXPECT_EQ(cache.simulations(), 0u);
    EXPECT_EQ(cache.diskHits(), 2u);
    EXPECT_EQ(cache.hits(), 2u);

    // Bit-identical results, timing included (cache hits carry the
    // originating run's timing).
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(experiments::runResultToJson(first[i]).dumpCanonical(),
                  experiments::runResultToJson(second[i]).dumpCanonical());
    }

    cache.setDiskRoot("");
    cache.clear();
}

TEST(RunCacheDiskTier, SupersetOnDiskAnswersSubsetAndSubsetMerges)
{
    const std::string root = freshRoot("jetty_dc_superset");
    auto &cache = RunCache::instance();
    cache.clear();
    cache.setDiskRoot(root);

    // Publish a two-filter superset, then ask for a subset from a
    // "fresh process": covered from disk, no simulation.
    experiments::runMany({sampleRequest("lu", {"EJ-16x2", "IJ-8x4x7"})});
    cache.clear();
    experiments::runMany({sampleRequest("lu", {"IJ-8x4x7"})});
    EXPECT_EQ(cache.simulations(), 0u);
    EXPECT_EQ(cache.diskHits(), 1u);

    // A strict superset re-simulates the union once and republishes;
    // the next fresh process sees all three filters covered.
    cache.clear();
    experiments::runMany(
        {sampleRequest("lu", {"EJ-16x2", "IJ-8x4x7", "EJ-32x4"})});
    EXPECT_EQ(cache.simulations(), 1u);
    cache.clear();
    experiments::runMany(
        {sampleRequest("lu", {"EJ-32x4", "EJ-16x2", "IJ-8x4x7"})});
    EXPECT_EQ(cache.simulations(), 0u);
    EXPECT_EQ(cache.diskHits(), 1u);

    cache.setDiskRoot("");
    cache.clear();
}

TEST(RunCacheDiskTier, ConcurrentSubsetSupersetStress)
{
    const std::string root = freshRoot("jetty_dc_stress");
    auto &cache = RunCache::instance();
    cache.clear();
    cache.setDiskRoot(root);

    // Many threads hammering overlapping subset/superset requests for
    // the same cells: the shared two-tier cache must stay consistent
    // and every answer must carry the filters it was asked for.
    const std::vector<std::vector<std::string>> asks = {
        {"EJ-16x2"},
        {"IJ-8x4x7"},
        {"EJ-16x2", "IJ-8x4x7"},
        {"IJ-8x4x7", "EJ-16x2", "EJ-32x4"},
    };
    std::vector<std::thread> threads;
    std::vector<int> failures(8, 0);
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t]() {
            for (unsigned round = 0; round < 6; ++round) {
                const auto &filters = asks[(t + round) % asks.size()];
                const auto runs = experiments::runMany(
                    {sampleRequest("lu", filters),
                     sampleRequest("ff", filters)});
                for (const auto &run : runs) {
                    for (const auto &name : filters) {
                        // statsFor fatal()s on a missing filter; probe
                        // membership by hand instead.
                        bool found = false;
                        for (const auto &have : run.filterNames)
                            found = found || have == name;
                        if (!found)
                            ++failures[t];
                    }
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;

    // Serial answers after the storm match a cold re-simulation.
    const auto cached =
        experiments::runMany({sampleRequest("lu", {"EJ-16x2"})}).front();
    cache.setDiskRoot("");
    cache.clear();
    const auto fresh =
        experiments::runMany({sampleRequest("lu", {"EJ-16x2"})}).front();
    EXPECT_EQ(cached.statsFor("EJ-16x2").probes,
              fresh.statsFor("EJ-16x2").probes);
    EXPECT_EQ(cached.statsFor("EJ-16x2").filtered,
              fresh.statsFor("EJ-16x2").filtered);
    cache.clear();
}
