/**
 * @file
 * Minimal self-contained JSON tree, writer and parser — the one
 * serialization layer behind the ExperimentSpec / Report API (src/api)
 * and every JSON file the tools and benches emit. No external
 * dependencies.
 *
 * Design points that matter to the API layer:
 *  - Objects preserve *insertion order* on emission (specs and reports
 *    read top-down), but dumpCanonical() sorts keys and strips
 *    whitespace, so two trees holding the same data always canonicalize
 *    to the same bytes — that string is what the RunCache keys on.
 *  - Numbers remember whether they were integers; doubles are formatted
 *    with the shortest representation that round-trips exactly, so
 *    parse -> emit -> parse is the identity.
 *  - Strings are escaped on output (quotes, backslashes, control
 *    characters) — the fix for the hand-rolled fprintf emitters this
 *    module replaces, which escaped nothing.
 */

#ifndef JETTY_UTIL_JSON_HH
#define JETTY_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jetty::json
{

/** Discriminator of a Value. Int/Uint/Double all answer isNumber(). */
enum class Type : std::uint8_t
{
    Null,
    Bool,
    Int,     //!< fits a signed 64-bit integer (and was written as one)
    Uint,    //!< unsigned 64-bit integer beyond int64 range
    Double,
    String,
    Array,
    Object,
};

/** One JSON value: a tagged tree node. */
class Value
{
  public:
    using Member = std::pair<std::string, Value>;

    Value() : type_(Type::Null) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(int v) : type_(Type::Int), int_(v) {}
    Value(unsigned v) : type_(Type::Int), int_(v) {}
    Value(long v) : type_(Type::Int), int_(v) {}
    Value(long long v) : type_(Type::Int), int_(v) {}
    Value(unsigned long v);
    Value(unsigned long long v);
    Value(double v) : type_(Type::Double), dbl_(v) {}
    Value(const char *s) : type_(Type::String), str_(s) {}
    Value(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Value array() { return Value(Type::Array); }
    static Value object() { return Value(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }
    /** An integral number (Int/Uint, or a Double holding an integer). */
    bool isIntegral() const;
    /** An integral number representable as int64 / uint64 — the guards
     *  validating readers check before calling asI64()/asU64() (casting
     *  an out-of-range double would be undefined behaviour). */
    bool fitsI64() const;
    bool fitsU64() const;
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Scalar readers; panic() on a type mismatch (callers validate). */
    bool asBool() const;
    std::int64_t asI64() const;
    std::uint64_t asU64() const;  //!< panics when negative
    double asDouble() const;
    const std::string &asString() const;

    // ---- object interface ----
    /** Append @p key (or replace its existing value); returns *this so
     *  builders chain. Panics on non-objects. */
    Value &set(const std::string &key, Value v);
    /** Member lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;
    const std::vector<Member> &members() const;

    // ---- array interface ----
    Value &push(Value v);  //!< append; panics on non-arrays
    const std::vector<Value> &items() const;

    /** Members (object), items (array), or 0. */
    std::size_t size() const;

    /** Pretty emission: two-space indent, insertion-order keys,
     *  trailing newline. */
    std::string dump() const;

    /** Canonical emission: keys sorted bytewise, no whitespace. Two
     *  trees holding the same data produce identical bytes — the
     *  RunCache key property. */
    std::string dumpCanonical() const;

    /** Compact emission: no whitespace, no trailing newline, but keys
     *  in *insertion order* (unlike dumpCanonical). One value per line
     *  — the newline-delimited serve wire framing; parse(dumpCompact())
     *  rebuilds the identical tree, so a report relayed through the
     *  wire still dump()s to the exact bytes the producer would have
     *  written. */
    std::string dumpCompact() const;

  private:
    explicit Value(Type t) : type_(t) {}

    void write(std::string &out, int indent, bool compact,
               bool sortKeys) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0;
    std::string str_;
    std::vector<Value> items_;
    std::vector<Member> members_;
};

/** Escape @p s for inclusion between JSON quotes. */
std::string escape(const std::string &s);

/** Shortest decimal form of @p v that strtod() parses back exactly. */
std::string formatDouble(double v);

/**
 * Parse @p text into a tree.
 * @param err on failure receives "line L: what went wrong"; the
 *            returned Value is then null.
 * @return the parsed value (trailing garbage is an error).
 */
Value parse(const std::string &text, std::string *err);

/** Read and parse @p path. @p err receives the failure ("" on
 *  success); the file-not-found case is reported there too. */
Value parseFile(const std::string &path, std::string *err);

/** Write @p v (pretty) to @p path atomically (util/atomic_file.hh:
 *  temp-file + fsync + rename, so a crash or full disk never leaves a
 *  torn document at @p path); fatal() on I/O failure. */
void writeFile(const std::string &path, const Value &v);

/** As writeFile(), but returns the failure description ("" on success)
 *  instead of fatal()ing — for best-effort writers like the disk
 *  cache. */
std::string writeFileErr(const std::string &path, const Value &v);

} // namespace jetty::json

#endif // JETTY_UTIL_JSON_HH
