/**
 * @file
 * Command-line driver for the jetty library: run any workload on any
 * system variant with any set of filter configurations, print coverage
 * and energy tables, or capture/replay binary traces.
 *
 * Every simulating subcommand (run, sweep, replay, bench, fuzz) is a
 * thin adapter over the declarative api::ExperimentSpec: `--spec FILE`
 * loads a spec, the command's flags overlay it (flags win), the
 * command's defaults fill whatever is still unset, and `--dump-spec`
 * prints the fully resolved spec instead of running — so any
 * invocation can be captured as one reproducible file and re-run
 * bit-identically with `--spec`. `--json FILE` writes the results as a
 * structured api::Report (schema in DESIGN.md), which echoes the spec.
 *
 * Usage:
 *   jetty_cli run     [--spec FILE] [--app NAME] [--procs N] [--buses N]
 *                     [--no-subblock] [--scale F]
 *                     [--filters SPEC[,SPEC...]] [--json FILE]
 *                     [--dump-spec]
 *   jetty_cli sweep   [--spec FILE] [--apps NAME[,NAME...]|all]
 *                     [--procs N[,M...]] [--buses N[,M...]]
 *                     [--no-subblock] [--scale F] [--jobs N]
 *                     [--filters SPEC[,SPEC...]] [--json FILE]
 *                     [--dump-spec]
 *                     [--workers N] [--ledger DIR] [--retries N]
 *                     [--respawns N] [--steal-after S] [--events FILE]
 *                     [--kill-worker-after N]
 *                     (--procs/--buses are sweep axes: every
 *                     (app, procs, buses) cell of the cross-product;
 *                     --workers N shards the campaign across N local
 *                     worker processes via the dist coordinator —
 *                     same Report bytes, plus work stealing, bounded
 *                     retry, and --ledger crash resume.
 *                     --kill-worker-after K is fault injection: the
 *                     first worker dies mid-shard after K requests)
 *   jetty_cli apps
 *   jetty_cli filters
 *   jetty_cli capture --app NAME --out FILE [--procs N] [--scale F]
 *                     [--limit N]
 *                     (records every processor's stream into one
 *                     JTTRACE2 file, one section per processor,
 *                     streamed — the capture never lives in memory)
 *   jetty_cli trace   --app NAME --proc P --out FILE [--limit N]
 *                     (single-processor capture, one-section JTTRACE2)
 *   jetty_cli replay  [--spec FILE] --in FILE[,FILE...]
 *                     [--filters SPEC[,...]] [--procs N] [--json FILE]
 *                     [--dump-spec]
 *                     (per-processor files, one multi-section capture,
 *                     or one single-section file cloned everywhere;
 *                     streamed and cached by content digest)
 *   jetty_cli serve   [--socket PATH] [--jobs N] [--cache-dir DIR]
 *                     [--cache-bytes N]
 *                     (experiment service daemon: accepts ExperimentSpec
 *                     jobs over a unix socket, answers them through the
 *                     shared two-tier RunCache and SweepRunner pool,
 *                     streams structured Reports back; many concurrent
 *                     clients share one cache)
 *   jetty_cli submit  SPEC.json [--socket PATH] [--json FILE]
 *                     [--timeout S] [--retries N]
 *   jetty_cli submit  --shutdown [--socket PATH]
 *                     (send one spec to a serve daemon and print its
 *                     cache counters; --json writes the streamed Report
 *                     — bit-identical to what the direct subcommand
 *                     would have written. --timeout/--retries bound the
 *                     connect backoff and the response wait)
 *   jetty_cli worker  [--jobs N] [--cache-dir DIR]
 *                     (distributed-sweep worker loop: serves shard
 *                     requests on stdin, answers on stdout; spawned by
 *                     `sweep --workers N`, or attach one over any
 *                     stream transport — ssh included)
 *   jetty_cli bench   [--spec FILE] [--app NAME | --in FILE[,FILE...]]
 *                     [--procs N] [--buses N] [--scale F]
 *                     [--filters SPEC[,...]] [--batch N] [--repeat K]
 *                     [--json FILE] [--dump-spec]
 *                     (sustained refs/sec of the batched delivery
 *                     pipeline; best of K cold runs, optional JSON)
 *   jetty_cli fuzz    [--spec FILE] [--seed N] [--rounds N] [--refs N]
 *                     [--procs N] [--buses N] [--filters SPEC[,...]]
 *                     [--seconds S] [--smoke] [--audit-every N]
 *                     [--out FILE] [--json FILE] [--repro FILE]
 *                     [--dump-spec]
 *                     (--buses pins the split interconnect; without it
 *                     rounds cycle snoopBuses through 1/2/4)
 *                     (coverage-guided differential fuzzing: online
 *                     invariant checkers + golden-model and batched
 *                     state equivalence; failures are shrunk and
 *                     written as a JTTRACE2 repro + .json sidecar whose
 *                     embedded ExperimentSpec pins the machine.
 *                     --repro replays a previously written repro
 *                     (legacy .txt sidecars still read).
 *                     Exit 0 clean, 2 on a caught violation)
 */

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <chrono>

#include "api/experiment_spec.hh"
#include "api/report.hh"
#include "core/filter_registry.hh"
#include "core/filter_spec.hh"
#include "dist/coordinator.hh"
#include "dist/worker.hh"
#include "experiments/experiments.hh"
#include "service/client.hh"
#include "service/executor.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "sim/latency.hh"
#include "sim/sweep.hh"
#include "trace/apps.hh"
#include "trace/file_stream_source.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "verify/fuzzer.hh"

using namespace jetty;

namespace
{

/** The paper's standard filter trio (run/replay/bench default) — owned
 *  by the service layer so the CLI and the serve daemon cannot drift. */
const std::vector<std::string> &kDefaultFilters =
    service::defaultFilterSpecs();

/** Parse "--key value" style options into a map. */
std::map<std::string, std::string>
parseOptions(int argc, char **argv, int first)
{
    std::map<std::string, std::string> opts;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (!startsWith(key, "--"))
            fatal("expected an option, got '" + key + "'");
        key = key.substr(2);
        if (key == "no-subblock" || key == "smoke" || key == "dump-spec" ||
            key == "shutdown") {
            opts[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("option --" + key + " needs a value");
            opts[key] = argv[++i];
        }
    }
    return opts;
}

/** Split a filter list on commas, but not inside HJ(...) parentheses. */
std::vector<std::string>
splitSpecs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(trim(cur));
    return out;
}

/** Validate @p specs; exits through the registry's describeFailure()
 *  (naming the offending token and its family's grammar) on any bad
 *  spec — no path prints a bare message or falls through with exit 0
 *  (cli negative-path test). */
void
requireValidFilters(const std::vector<std::string> &specs)
{
    for (const auto &s : specs) {
        if (!filter::isValidFilterSpec(s))
            fatal(filter::FilterRegistry::instance().describeFailure(s));
    }
}

/** Parse a single --buses option (>= 1); @p fallback when absent. */
unsigned
busCount(const std::map<std::string, std::string> &opts, unsigned fallback)
{
    const auto it = opts.find("buses");
    if (it == opts.end())
        return fallback;
    unsigned v = 0;
    if (!parseUnsigned(it->second, v) || v < 1)
        fatal("--buses needs a count >= 1, got '" + it->second + "'");
    return v;
}

/** Load --spec FILE when given, else a default-constructed spec. */
api::ExperimentSpec
specFromOpts(const std::map<std::string, std::string> &opts)
{
    if (opts.count("spec"))
        return api::ExperimentSpec::load(opts.at("spec"));
    return api::ExperimentSpec();
}

/** Overlay --filters onto @p filters (validated; flag wins). */
void
overlayFilterFlag(const std::map<std::string, std::string> &opts,
                  std::vector<std::string> &filters)
{
    if (!opts.count("filters"))
        return;
    auto specs = splitSpecs(opts.at("filters"));
    requireValidFilters(specs);
    filters = specs;
}

/** Overlay --scale onto @p scale (finite, > 0; flag wins). A NaN
 *  would silently fall back to the default and an infinity would
 *  abort in the JSON emitter, so both are rejected here. */
void
overlayScaleFlag(const std::map<std::string, std::string> &opts,
                 double &scale)
{
    if (!opts.count("scale"))
        return;
    const double v = std::atof(opts.at("scale").c_str());
    if (!std::isfinite(v) || v <= 0)
        fatal("--scale needs a finite value > 0, got '" +
              opts.at("scale") + "'");
    scale = v;
}

/**
 * Overlay the machine/workload/filter flags every simulating command
 * shares onto @p spec. Flags win over the spec file; whatever neither
 * sets is resolved by the command's own defaults afterwards.
 */
void
overlayCommonFlags(const std::map<std::string, std::string> &opts,
                   api::ExperimentSpec &spec)
{
    if (opts.count("procs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("procs"), v) || v < 2)
            fatal("--procs needs a count >= 2, got '" + opts.at("procs") +
                  "'");
        spec.machine.procs = v;
    }
    spec.machine.buses = busCount(opts, spec.machine.buses);
    if (opts.count("no-subblock"))
        spec.machine.subblocked = false;
    overlayScaleFlag(opts, spec.scale);
    if (opts.count("app")) {
        spec.apps = {opts.at("app")};
        // Flags win over the spec's workload wholesale: an explicit
        // --app must not be silently outvoted by the spec's
        // trace_files (the --in overlay clears apps symmetrically).
        spec.traceFiles.clear();
    }
    overlayFilterFlag(opts, spec.filters);
}

/** @p cmd simulates exactly one machine; a spec carrying sweep axes
 *  would be silently narrowed, so reject it the way multi-app and
 *  trace-file mismatches are rejected. */
void
rejectSweepAxes(const api::ExperimentSpec &spec, const char *cmd)
{
    if (!spec.sweepProcs.empty() || !spec.sweepBuses.empty())
        fatal(std::string(cmd) +
              ": the spec has a sweep section — use sweep");
}

/** Sections @p cmd cannot honour must fail loudly, not be silently
 *  dropped and then echoed back as if they had been part of the run. */
void
rejectForeignSections(const api::ExperimentSpec &spec, const char *cmd,
                      bool allowBench)
{
    if (spec.hasFuzz)
        fatal(std::string(cmd) +
              ": the spec has a fuzz section — use fuzz");
    if (!allowBench && spec.benchRepeat > 0)
        fatal(std::string(cmd) +
              ": the spec has a bench section — use bench");
}

/**
 * Round-trip the fully resolved spec through its own schema, replacing
 * it with the normalized parse. Flags overlay the spec *before* this
 * runs, so a flag value the schema would reject (an unknown app, an
 * out-of-range processor count) fails here with the schema's
 * diagnostic — --dump-spec can never emit a spec that --spec refuses.
 */
void
validateResolved(api::ExperimentSpec &spec)
{
    std::string err;
    api::ExperimentSpec parsed = api::ExperimentSpec::parse(spec.emit(),
                                                            &err);
    if (!err.empty())
        fatal(err);
    spec = std::move(parsed);
}

/** Shared resolution tail: default filters and scale. */
void
resolveCommonDefaults(api::ExperimentSpec &spec, double defaultScale)
{
    if (spec.filters.empty())
        spec.filters = kDefaultFilters;
    if (spec.scale <= 0)
        spec.scale = defaultScale;
}

/** Print the fully resolved spec and report whether the command should
 *  exit (--dump-spec runs nothing). */
bool
dumpSpecRequested(const std::map<std::string, std::string> &opts,
                  const api::ExperimentSpec &spec)
{
    if (!opts.count("dump-spec"))
        return false;
    std::fputs(spec.emit().c_str(), stdout);
    return true;
}

/**
 * Attach the persistent RunCache tier for the caching subcommands
 * (run/sweep/replay/serve — never bench or fuzz, whose timings and
 * campaigns must be fresh). Precedence: --cache-dir flag, then the
 * JETTY_CACHE_DIR environment variable (already honoured by the
 * RunCache constructor), then the default user cache directory. A value
 * of "off" (flag or env) disables the tier.
 */
void
enableDiskCache(const std::map<std::string, std::string> &opts)
{
    auto &cache = experiments::RunCache::instance();
    if (opts.count("cache-bytes")) {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(opts.at("cache-bytes").c_str(), &end, 10);
        if (end == opts.at("cache-bytes").c_str() || *end != '\0' ||
            v == 0)
            fatal("--cache-bytes needs a positive byte count, got '" +
                  opts.at("cache-bytes") + "'");
        cache.setDiskBudget(v);
    }
    if (opts.count("cache-dir")) {
        cache.setDiskRoot(opts.at("cache-dir"));
        return;
    }
    if (std::getenv("JETTY_CACHE_DIR"))
        return;
    std::string root;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        root = std::string(xdg) + "/jetty";
    else if (const char *home = std::getenv("HOME"); home && *home)
        root = std::string(home) + "/.cache/jetty";
    if (!root.empty())
        cache.setDiskRoot(root);
}

void
printRunReport(const experiments::AppRunResult &run,
               const experiments::SystemVariant &variant,
               const std::vector<std::string> &specs)
{
    const auto agg = run.stats.aggregate();
    std::printf("%s: %.1fM refs, L1 %.1f%%, L2 %.1f%%, snoops miss "
                "%.1f%% of %.2fM probes\n\n",
                run.appName.c_str(), agg.accesses / 1e6,
                percent(agg.l1Hits, agg.accesses),
                percent(agg.l2LocalHits, agg.l2LocalAccesses),
                percent(agg.snoopMisses, agg.snoopTagProbes),
                agg.snoopTagProbes / 1e6);

    TextTable table;
    table.header({"filter", "coverage", "snoopE saved(S)", "allE saved(S)",
                  "snoopE saved(P)", "allE saved(P)", "mean snoop lat"});
    for (const auto &spec : specs) {
        const auto &fs = run.statsFor(spec);
        const auto s = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        const auto p = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Parallel);
        const auto lat = sim::evaluateLatency(fs);
        table.row({
            spec,
            TextTable::pct(100.0 * fs.coverage()),
            TextTable::pct(s.reductionOverSnoopsPct),
            TextTable::pct(s.reductionOverAllPct),
            TextTable::pct(p.reductionOverSnoopsPct),
            TextTable::pct(p.reductionOverAllPct),
            TextTable::num(lat.jettyMeanCycles, 1) + " cyc",
        });
    }
    table.print();
}

int
cmdRun(const std::map<std::string, std::string> &opts)
{
    api::ExperimentSpec spec = specFromOpts(opts);
    overlayCommonFlags(opts, spec);
    // Resolution and execution are the service executor's (shared with
    // `serve`, so a served spec resolves and reports exactly as the
    // direct subcommand would); the CLI turns its diagnostics back into
    // the usual fatal() exits.
    std::string err = service::resolveSpec(spec, "run");
    if (!err.empty())
        fatal(err);
    if (dumpSpecRequested(opts, spec))
        return 0;

    enableDiskCache(opts);
    service::ExecuteResult result;
    err = service::executeResolved(spec, "run", 0, result);
    if (!err.empty())
        fatal(err);

    const experiments::SystemVariant variant = spec.machine.toVariant();
    const std::vector<std::string> &specs = result.filterNames;
    const experiments::AppRunResult &run = result.runs[0];
    printRunReport(run, variant, specs);

    if (variant.snoopBuses > 1) {
        // The split-interconnect view: per-bus occupancy, the latency
        // model's contention term, and the accountant's exact per-bus
        // snoop-energy decomposition.
        const auto contention = sim::evaluateBusContention(run.stats);
        const energy::CacheEnergyModel model(variant.l2EnergyGeometry());
        const energy::EnergyAccountant accountant(model);
        const auto bus_energy = accountant.perBusSnoopEnergy(
            run.stats.busSnoopTagProbes, energy::AccessMode::Serial);
        double total_energy = 0;
        for (const double e : bus_energy)
            total_energy += e;

        std::printf("\ninterconnect: %u buses, busiest %.1f%% utilized "
                    "(mean %.1f%%), M/D/1 wait %.2f bus cycles%s\n",
                    variant.snoopBuses,
                    100.0 * contention.busiestUtilization,
                    100.0 * contention.meanUtilization,
                    contention.busiestWaitBusCycles,
                    contention.saturated ? " [saturated]" : "");
        for (std::size_t b = 0; b < run.stats.perBus.size(); ++b) {
            const auto &bus = run.stats.perBus[b];
            std::printf("  bus %zu: %llu txns (%llu rd, %llu rdX, "
                        "%llu upg), %.1f%% of snoop probe energy\n",
                        b,
                        static_cast<unsigned long long>(bus.transactions),
                        static_cast<unsigned long long>(bus.reads),
                        static_cast<unsigned long long>(bus.readXs),
                        static_cast<unsigned long long>(bus.upgrades),
                        total_energy > 0
                            ? 100.0 * bus_energy[b] / total_energy
                            : 0.0);
        }
    }

    if (opts.count("json")) {
        json::writeFile(opts.at("json"), result.report);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/** The sweep results table — one row per (app, variant) cell, one
 *  coverage column per filter. Shared by the single-process and the
 *  distributed (--workers) paths so their human output matches too. */
void
printSweepTable(const std::vector<std::string> &specs,
                const std::vector<experiments::RunRequest> &requests,
                const std::vector<experiments::AppRunResult> &runs)
{
    TextTable table;
    std::vector<std::string> head{"app", "procs", "buses", "snoopMiss%",
                                  "Mrefs/s"};
    for (const auto &s : specs)
        head.push_back(s);
    table.header(head);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &run = runs[i];
        const auto agg = run.stats.aggregate();
        std::vector<std::string> row{
            run.abbrev,
            std::to_string(requests[i].variant.nprocs),
            std::to_string(requests[i].variant.snoopBuses),
            TextTable::pct(percent(agg.snoopMisses, agg.snoopTagProbes)),
            !run.refsTooFewForRate && run.simSeconds > 0
                ? TextTable::num(run.totalRefs / 1e6 / run.simSeconds, 1)
                : std::string("-"),
        };
        for (const auto &s : specs)
            row.push_back(TextTable::pct(100.0 * run.statsFor(s).coverage()));
        table.row(std::move(row));
    }
    table.print();
}

/** One human-readable progress line per ShardEvent, flushed eagerly so
 *  a scripted caller tailing the coordinator sees shard lifecycle
 *  transitions (assigned/started/completed/stolen/retried/resumed/
 *  duplicate/worker_died) as they happen. */
void
printShardEvent(const dist::ShardEvent &ev)
{
    if (ev.type == "worker_died") {
        std::printf("worker %d died%s%s\n", ev.worker,
                    ev.detail.empty() ? "" : ": ", ev.detail.c_str());
        std::fflush(stdout);
        return;
    }
    std::string line = "shard " + std::to_string(ev.shardId) + " " + ev.type;
    if (ev.worker >= 0)
        line += " worker=" + std::to_string(ev.worker);
    if (ev.attempt > 0)
        line += " attempt=" + std::to_string(ev.attempt);
    if (ev.type == "completed") {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      " (%.2fs, %llu simulated, %llu disk, %llu mem)",
                      ev.wallSeconds,
                      static_cast<unsigned long long>(ev.simulated),
                      static_cast<unsigned long long>(ev.diskHits),
                      static_cast<unsigned long long>(ev.memHits));
        line += buf;
    }
    if (!ev.detail.empty() && ev.type != "completed")
        line += ": " + ev.detail;
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
}

/**
 * The `sweep --workers N` path: shard the resolved campaign across N
 * locally forked `jetty_cli worker` processes through the dist
 * coordinator. The merged Report is byte-identical to the
 * single-process path (same service::buildReport, cells keyed by the
 * canonical runCacheKey); what changes is the execution fabric — work
 * stealing for stragglers, bounded retry on worker death, and an
 * optional on-disk resume ledger.
 */
int
runDistributedSweep(const api::ExperimentSpec &spec,
                    const std::map<std::string, std::string> &opts,
                    unsigned jobs)
{
    unsigned workers = 0;
    if (!parseUnsigned(opts.at("workers"), workers) || workers < 1)
        fatal("--workers needs a count >= 1, got '" + opts.at("workers") +
              "'");

    // Worker pipes: a worker dying mid-write must surface as EPIPE on
    // the coordinator's send, not kill the coordinator with SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    dist::CoordinatorConfig cfg;
    cfg.spawnWorkers = workers;
    if (opts.count("retries")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("retries"), v))
            fatal("--retries needs a non-negative count, got '" +
                  opts.at("retries") + "'");
        cfg.maxRetries = v;
    }
    if (opts.count("respawns")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("respawns"), v))
            fatal("--respawns needs a non-negative count, got '" +
                  opts.at("respawns") + "'");
        cfg.maxRespawns = v;
    }
    if (opts.count("steal-after")) {
        const double v = std::atof(opts.at("steal-after").c_str());
        if (!std::isfinite(v))
            fatal("--steal-after needs a finite number of seconds, got '" +
                  opts.at("steal-after") + "'");
        cfg.stealAfterSeconds = v;
    }
    if (opts.count("ledger"))
        cfg.ledgerDir = opts.at("ledger");
    cfg.eventSink = printShardEvent;

    unsigned long long killAfter = 0;
    if (opts.count("kill-worker-after")) {
        char *end = nullptr;
        killAfter = std::strtoull(opts.at("kill-worker-after").c_str(),
                                  &end, 10);
        if (end == opts.at("kill-worker-after").c_str() || *end != '\0' ||
            killAfter == 0)
            fatal("--kill-worker-after needs a positive request count, "
                  "got '" + opts.at("kill-worker-after") + "'");
    }

    // Children must attach the exact cache tier the parent resolved
    // (flag > env > default): pass it explicitly so a respawned worker
    // under a stripped environment still lands on the same directory.
    const std::string cacheRoot =
        experiments::RunCache::instance().diskRoot();

    auto spawned = std::make_shared<unsigned>(0);
    cfg.factory = [&opts, &cacheRoot, jobs, killAfter,
                   spawned](dist::WorkerEndpoint &ep,
                            std::string *err) -> bool {
        (void)opts;
        int req[2];
        int resp[2];
        // O_CLOEXEC everywhere: a later-forked worker must NOT inherit
        // an earlier worker's pipe ends across its execv — a leaked
        // request-pipe write end would keep that worker's stdin open
        // after the coordinator hangs up, so it never sees EOF and the
        // wind-down reap deadlocks. The child's dup2 onto fds 0/1
        // clears the flag on exactly the two ends it needs.
        if (::pipe2(req, O_CLOEXEC) != 0) {
            if (err)
                *err = std::string("pipe: ") + std::strerror(errno);
            return false;
        }
        if (::pipe2(resp, O_CLOEXEC) != 0) {
            if (err)
                *err = std::string("pipe: ") + std::strerror(errno);
            ::close(req[0]);
            ::close(req[1]);
            return false;
        }
        const unsigned index = (*spawned)++;
        const pid_t pid = ::fork();
        if (pid < 0) {
            if (err)
                *err = std::string("fork: ") + std::strerror(errno);
            ::close(req[0]);
            ::close(req[1]);
            ::close(resp[0]);
            ::close(resp[1]);
            return false;
        }
        if (pid == 0) {
            // Child: shard requests on stdin, responses on stdout,
            // stderr inherited so worker diagnostics stay visible.
            ::dup2(req[0], 0);
            ::dup2(resp[1], 1);
            ::close(req[0]);
            ::close(req[1]);
            ::close(resp[0]);
            ::close(resp[1]);
            if (killAfter > 0 && index == 0) {
                // Fault injection: only the FIRST spawn dies, so a
                // respawned replacement finishes the campaign.
                ::setenv("JETTY_WORKER_DIE_AFTER",
                         std::to_string(killAfter).c_str(), 1);
            }
            std::vector<std::string> args = {
                "jetty_cli", "worker", "--cache-dir",
                cacheRoot.empty() ? std::string("off") : cacheRoot};
            if (jobs) {
                args.push_back("--jobs");
                args.push_back(std::to_string(jobs));
            }
            std::vector<char *> argvp;
            argvp.reserve(args.size() + 1);
            for (auto &a : args)
                argvp.push_back(const_cast<char *>(a.c_str()));
            argvp.push_back(nullptr);
            ::execv("/proc/self/exe", argvp.data());
            _exit(127);
        }
        ::close(req[0]);
        ::close(resp[1]);
        ep.readFd = resp[0];
        ep.writeFd = req[1];
        ep.pid = pid;
        return true;
    };

    dist::Coordinator coordinator(cfg);
    dist::CampaignResult result;
    const std::string err = coordinator.run(spec, result);
    if (!err.empty())
        fatal(err);

    printSweepTable(result.filterNames, result.requests, result.runs);

    std::printf("\n%llu shards (%llu simulated, %llu disk hits, "
                "%llu mem hits), %u workers, resumed %llu, stolen %llu, "
                "retried %llu, duplicates %llu, %.1fs\n",
                static_cast<unsigned long long>(result.shards),
                static_cast<unsigned long long>(result.simulated),
                static_cast<unsigned long long>(result.diskHits),
                static_cast<unsigned long long>(result.memHits), workers,
                static_cast<unsigned long long>(result.resumed),
                static_cast<unsigned long long>(result.stolen),
                static_cast<unsigned long long>(result.retried),
                static_cast<unsigned long long>(result.duplicates),
                result.wallSeconds);

    if (opts.count("events")) {
        json::Value doc = json::Value::object();
        doc.set("jetty_dist_events", 1);
        json::Value arr = json::Value::array();
        for (const auto &ev : result.events)
            arr.push(ev.toJson());
        doc.set("events", std::move(arr));
        json::writeFile(opts.at("events"), doc);
        std::printf("wrote %s\n", opts.at("events").c_str());
    }
    if (opts.count("json")) {
        json::writeFile(opts.at("json"), result.report);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/**
 * The parallel cross-product: applications × system variants, one table
 * row per (app, variant), one column per filter. The spec's expand() is
 * the cross-product expander; the sweep engine simulates every distinct
 * cell concurrently (--jobs) and exactly once.
 */
int
cmdSweep(const std::map<std::string, std::string> &opts)
{
    api::ExperimentSpec spec = specFromOpts(opts);

    // Axis flags (list-valued, so not part of overlayCommonFlags).
    if (opts.count("apps")) {
        const std::string app_list = opts.at("apps");
        spec.apps.clear();
        // Flags win over the spec's workload wholesale: expand()
        // prefers trace_files, so an explicit --apps must clear them.
        spec.traceFiles.clear();
        if (toUpper(app_list) == "ALL") {
            for (const auto &app : trace::paperApps())
                spec.apps.push_back(app.abbrev);
        } else {
            for (const auto &name : split(app_list, ','))
                spec.apps.push_back(trim(name));
        }
    }
    if (opts.count("procs")) {
        spec.sweepProcs.clear();
        for (const auto &n : split(opts.at("procs"), ',')) {
            unsigned v = 0;
            if (!parseUnsigned(trim(n), v) || v < 2)
                fatal("--procs needs counts >= 2, got '" + trim(n) + "'");
            spec.sweepProcs.push_back(v);
        }
    }
    if (opts.count("buses")) {
        spec.sweepBuses.clear();
        for (const auto &n : split(opts.at("buses"), ',')) {
            unsigned v = 0;
            if (!parseUnsigned(trim(n), v) || v < 1)
                fatal("--buses needs counts >= 1, got '" + trim(n) + "'");
            spec.sweepBuses.push_back(v);
        }
    }
    if (opts.count("no-subblock"))
        spec.machine.subblocked = false;
    overlayScaleFlag(opts, spec.scale);
    overlayFilterFlag(opts, spec.filters);

    // Sweep resolution (all-paper-apps default, axis inference) lives
    // in the shared service executor.
    std::string err = service::resolveSpec(spec, "sweep");
    if (!err.empty())
        fatal(err);
    if (dumpSpecRequested(opts, spec))
        return 0;

    unsigned jobs = 0;  // 0 = SweepRunner default (worker knob, not
                        // experiment identity — deliberately not in the
                        // spec: results are jobs-independent)
    if (opts.count("jobs")) {
        const int v = std::atoi(opts.at("jobs").c_str());
        if (v < 0)
            fatal("--jobs must be >= 0 (0 = auto)");
        jobs = static_cast<unsigned>(v);
    }

    enableDiskCache(opts);

    // The distributed fabric: shard the campaign across local worker
    // processes instead of in-process SweepRunner threads. Same Report
    // bytes either way — the branch only changes who simulates.
    if (opts.count("workers"))
        return runDistributedSweep(spec, opts, jobs);

    service::ExecuteResult result;
    err = service::executeResolved(spec, "sweep", jobs, result);
    if (!err.empty())
        fatal(err);
    const std::vector<std::string> &specs = result.filterNames;
    const std::vector<experiments::RunRequest> &requests = result.requests;
    const std::vector<experiments::AppRunResult> &runs = result.runs;
    const double sweep_seconds = result.sweepSeconds;
    const std::uint64_t simulated = result.simulated;

    printSweepTable(specs, requests, runs);

    // Report the concurrency actually available to this sweep: the
    // requested (or default) worker count never exceeds the number of
    // simulations there were to run.
    const std::uint64_t want = jobs ? jobs : sim::SweepRunner::defaultJobs();
    // Aggregate delivery rate of the whole sweep: references behind every
    // answered run (cache hits included) over the sweep's wall clock.
    std::uint64_t sim_refs = 0;
    for (const auto &run : runs)
        sim_refs += run.totalRefs;
    std::printf("\n%zu runs (%llu simulated, %llu cache hits), "
                "%llu workers, %.1f Mrefs/s served\n",
                runs.size(),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(
                    experiments::RunCache::instance().hits()),
                static_cast<unsigned long long>(std::min(want, simulated)),
                sweep_seconds > 0 ? sim_refs / 1e6 / sweep_seconds : 0.0);

    if (opts.count("json")) {
        json::writeFile(opts.at("json"), result.report);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/** Enumerate the registered filter families and the paper's specs. */
int
cmdFilters()
{
    const auto &registry = filter::FilterRegistry::instance();

    TextTable table;
    table.header({"family", "grammar", "example", "description"});
    for (const auto &key : registry.listFamilies()) {
        const auto *family = registry.family(key);
        table.row({family->key, family->grammar, family->example,
                   family->summary});
    }
    table.print();

    std::printf("\nPaper configurations:\n");
    auto print_list = [](const char *label,
                         const std::vector<std::string> &specs) {
        std::printf("  %-12s", label);
        for (const auto &s : specs)
            std::printf(" %s", s.c_str());
        std::printf("\n");
    };
    print_list("Figure 4(a):", filter::paperExcludeSpecs());
    print_list("Figure 4(b):", filter::paperVectorExcludeSpecs());
    print_list("Figure 5(a):", filter::paperIncludeSpecs());
    print_list("Figure 5(b):", filter::paperHybridSpecs());
    return 0;
}

int
cmdApps()
{
    TextTable table;
    table.header({"tag", "name", "streams", "refs/proc"});
    for (const auto &app : trace::paperApps()) {
        table.row({app.abbrev, app.name,
                   TextTable::count(app.streams.size()),
                   TextTable::count(app.accessesPerProc)});
    }
    table.row({"ts", "ThroughputServer (extra)", "1", "-"});
    table.row({"ws", "WidelyShared (extra)", "2", "-"});
    table.print();
    return 0;
}

int
cmdTrace(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("app") || !opts.count("out"))
        fatal("trace needs --app and --out");
    const unsigned proc = opts.count("proc")
                              ? static_cast<unsigned>(
                                    std::atoi(opts.at("proc").c_str()))
                              : 0;
    const std::uint64_t limit =
        opts.count("limit")
            ? static_cast<std::uint64_t>(std::atoll(opts.at("limit").c_str()))
            : 1'000'000;

    trace::Workload workload(trace::appByName(opts.at("app")), 4);
    auto src = workload.makeSource(proc);
    const auto recs = trace::collect(*src, limit);
    trace::writeTraceFile(opts.at("out"), recs);
    std::printf("wrote %zu references to %s\n", recs.size(),
                opts.at("out").c_str());
    return 0;
}

/** Capture every processor's stream into one multi-section JTTRACE2
 *  file. Streams are written in bounded chunks, so a capture of any
 *  length (beyond 4 Gi records, beyond memory) works. */
int
cmdCapture(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("app") || !opts.count("out"))
        fatal("capture needs --app and --out");
    unsigned nprocs = 4;
    if (opts.count("procs")) {
        if (!parseUnsigned(opts.at("procs"), nprocs) || nprocs < 1)
            fatal("capture --procs needs a count >= 1");
    }
    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 1.0;
    const std::uint64_t limit =
        opts.count("limit")
            ? static_cast<std::uint64_t>(
                  std::atoll(opts.at("limit").c_str()))
            : 0;  // 0 = the profile's full stream

    const trace::Workload workload(trace::appByName(opts.at("app")),
                                   nprocs, scale);
    trace::TraceFileWriter writer(opts.at("out"), nprocs);
    std::vector<trace::TraceRecord> buf(64 * 1024);
    for (unsigned p = 0; p < nprocs; ++p) {
        auto src = workload.makeSource(p);
        std::uint64_t left =
            limit ? limit : std::numeric_limits<std::uint64_t>::max();
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, buf.size()));
            const std::size_t got = src->nextBatch(buf.data(), want);
            writer.append(buf.data(), got);
            left -= got;
            if (got < want)
                break;
        }
        writer.endStream();
    }
    writer.close();
    std::printf("captured %llu references (%u per-processor streams) "
                "to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                nprocs, opts.at("out").c_str());
    return 0;
}

/** Processor count a replay file list drives; the fallback — the
 *  spec's machine.procs, overridden by --procs — only matters for one
 *  single-section file (trace::inferReplayProcs rules), so a dumped
 *  spec re-runs on the machine it recorded. */
unsigned
replayProcs(const std::vector<std::string> &files,
            const std::map<std::string, std::string> &opts,
            unsigned fallback)
{
    if (opts.count("procs")) {
        if (!parseUnsigned(opts.at("procs"), fallback) || fallback < 2)
            fatal("replay --procs needs a count >= 2");
    }
    return trace::inferReplayProcs(files, fallback);
}

int
cmdReplay(const std::map<std::string, std::string> &opts)
{
    api::ExperimentSpec spec = specFromOpts(opts);
    if (opts.count("in")) {
        // Flags win over the spec's workload wholesale (apps and
        // trace_files are mutually exclusive in the schema).
        spec.apps.clear();
        spec.traceFiles.clear();
        for (const auto &f : split(opts.at("in"), ','))
            spec.traceFiles.push_back(trim(f));
    }
    overlayFilterFlag(opts, spec.filters);
    if (opts.count("procs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("procs"), v) || v < 2)
            fatal("replay --procs needs a count >= 2");
        spec.machine.procs = v;
    }
    // Resolution (default filters, processor inference from the
    // capture, section rejection) is the shared service executor's.
    std::string err = service::resolveSpec(spec, "replay");
    if (!err.empty())
        fatal(err);
    if (dumpSpecRequested(opts, spec))
        return 0;

    // Replays go through the experiment layer: the sources stream from
    // disk (nothing is materialized) and the run cache keys the workload
    // by the files' content digests, so repeated replays of one capture
    // simulate once per process — and, with the disk tier, once per
    // machine.
    enableDiskCache(opts);
    service::ExecuteResult result;
    err = service::executeResolved(spec, "replay", 0, result);
    if (!err.empty())
        fatal(err);
    const experiments::AppRunResult &run = result.runs[0];

    const auto agg = run.stats.aggregate();
    std::printf("replayed %.2fM refs on %u processors; snoops miss "
                "%.1f%%\n\n",
                agg.accesses / 1e6, spec.machine.procs,
                percent(agg.snoopMisses, agg.snoopTagProbes));
    TextTable table;
    table.header({"filter", "coverage"});
    for (std::size_t i = 0; i < run.filterNames.size(); ++i) {
        table.row({run.filterNames[i],
                   TextTable::pct(100.0 * run.filterStats[i].coverage())});
    }
    table.print();

    if (opts.count("json")) {
        json::writeFile(opts.at("json"), result.report);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/**
 * Sustained throughput of the batched delivery pipeline: best of K cold
 * runs (fresh system and sources each time, only run() timed), reported
 * per run and as a structured api::Report for trend tracking.
 */
int
cmdBench(const std::map<std::string, std::string> &opts)
{
    using Clock = std::chrono::steady_clock;

    api::ExperimentSpec spec = specFromOpts(opts);
    overlayCommonFlags(opts, spec);
    if (opts.count("in")) {
        spec.traceFiles.clear();
        for (const auto &f : split(opts.at("in"), ','))
            spec.traceFiles.push_back(trim(f));
        spec.apps.clear();
    }
    if (opts.count("batch")) {
        unsigned batch = 0;
        if (!parseUnsigned(opts.at("batch"), batch) || batch < 1)
            fatal("bench --batch needs a count >= 1");
        spec.machine.batchRefs = batch;
    }
    if (opts.count("repeat")) {
        unsigned repeat = 0;
        if (!parseUnsigned(opts.at("repeat"), repeat) || repeat < 1)
            fatal("bench --repeat needs a count >= 1");
        spec.benchRepeat = repeat;
    }
    if (spec.apps.empty() && spec.traceFiles.empty())
        spec.apps = {"lu"};
    if (spec.apps.size() > 1)
        fatal("bench drives one workload (the spec names " +
              std::to_string(spec.apps.size()) + " apps)");
    if (spec.benchRepeat == 0)
        spec.benchRepeat = 3;
    rejectSweepAxes(spec, "bench");
    rejectForeignSections(spec, "bench", /*allowBench=*/true);
    resolveCommonDefaults(spec, 1.0);
    if (!spec.traceFiles.empty()) {
        spec.machine.procs =
            replayProcs(spec.traceFiles, opts, spec.machine.procs);
    }
    validateResolved(spec);
    if (dumpSpecRequested(opts, spec))
        return 0;

    // Bench drives SmpSystem directly, so explicit machine geometry in
    // the spec is honoured here (unlike run/sweep).
    sim::SmpConfig cfg = spec.smpConfig();
    const unsigned repeat = spec.benchRepeat;

    std::unique_ptr<trace::Workload> workload;
    std::string name;
    if (!spec.traceFiles.empty()) {
        name = spec.traceFiles.front();
        for (std::size_t i = 1; i < spec.traceFiles.size(); ++i)
            name += "," + spec.traceFiles[i];
    } else {
        workload = std::make_unique<trace::Workload>(
            trace::appByName(spec.apps[0]), cfg.nprocs, spec.scale);
        name = spec.apps[0];
    }

    std::uint64_t refs = 0;
    std::vector<double> seconds;
    for (unsigned r = 0; r < repeat; ++r) {
        sim::SmpSystem sys(cfg);
        std::vector<trace::TraceSourcePtr> sources;
        if (workload) {
            for (unsigned p = 0; p < cfg.nprocs; ++p)
                sources.push_back(workload->makeSource(p));
        } else {
            sources = trace::makeFileSources(spec.traceFiles, cfg.nprocs);
        }
        sys.attachSources(std::move(sources));
        const auto t0 = Clock::now();
        sys.run();
        const auto t1 = Clock::now();
        seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
        refs = sys.stats().aggregate().accesses;
    }
    const double best = *std::min_element(seconds.begin(), seconds.end());

    std::printf("bench %s: %u procs, %u bus%s, %zu filters, batch %u, "
                "%.2fM refs\n",
                name.c_str(), cfg.nprocs, cfg.snoopBuses,
                cfg.snoopBuses == 1 ? "" : "es", spec.filters.size(),
                cfg.batchRefs, refs / 1e6);
    for (unsigned r = 0; r < repeat; ++r) {
        std::printf("  run %u: %.3f s  (%.1f Mrefs/s)\n", r + 1,
                    seconds[r], refs / 1e6 / seconds[r]);
    }
    std::printf("sustained: %.1f Mrefs/s (best of %u)\n", refs / 1e6 / best,
                repeat);

    if (opts.count("json")) {
        api::Report report("bench");
        report.echoSpec(spec);
        auto &root = report.root();
        // The pre-Report emitter's fields, preserved for trend tooling.
        root.set("bench", "jetty_cli");
        root.set("workload", name);
        root.set("procs", cfg.nprocs);
        root.set("snoop_buses", cfg.snoopBuses);
        root.set("batch_refs", cfg.batchRefs);
        root.set("filters",
                 static_cast<std::uint64_t>(spec.filters.size()));
        root.set("refs", refs);
        root.set("repeats", repeat);
        root.set("best_seconds", best);
        root.set("refs_per_sec",
                 api::Report::ratio(static_cast<double>(refs), best));
        if (!spec.traceFiles.empty()) {
            root.set("trace_digests",
                     api::Report::traceDigestsNode(spec.traceFiles));
        }
        report.writeFile(opts.at("json"));
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/** The effective spec of a fuzz campaign (verify::specOfFuzz with the
 *  configured bus count — the shared construction the repro sidecar
 *  also uses). */
api::ExperimentSpec
specOfFuzz(const verify::FuzzConfig &cfg)
{
    return verify::specOfFuzz(cfg, cfg.system.snoopBuses);
}

/** Apply a loaded spec onto the fuzz defaults. A present machine
 *  section is authoritative (explicit geometry honoured); an absent
 *  one keeps the fuzzer's deliberately tiny thrash machine rather than
 *  silently swapping in the paper variant. Filters fall back to the
 *  fuzzer's every-family default when the spec names none. Sections
 *  fuzz cannot honour (workload, sweep, bench) are rejected, matching
 *  the other subcommands. */
void
applySpecToFuzz(const api::ExperimentSpec &spec, verify::FuzzConfig &cfg)
{
    if (!spec.apps.empty() || !spec.traceFiles.empty())
        fatal("fuzz: the spec has a workload section — fuzz synthesizes "
              "its own adversarial traces (use run/replay/bench)");
    rejectSweepAxes(spec, "fuzz");
    if (spec.benchRepeat > 0)
        fatal("fuzz: the spec has a bench section — use bench");

    if (spec.hasMachine) {
        const std::vector<std::string> default_filters =
            cfg.system.filterSpecs;
        cfg.system = spec.smpConfig();
        if (spec.filters.empty())
            cfg.system.filterSpecs = default_filters;
    } else if (!spec.filters.empty()) {
        cfg.system.filterSpecs = spec.filters;
    }
    cfg.system.checkSafety = false;
    if (spec.hasFuzz) {
        cfg.seed = spec.fuzz.seed;
        cfg.rounds = spec.fuzz.rounds;
        cfg.refsPerProc = spec.fuzz.refsPerProc;
        cfg.auditEvery = spec.fuzz.auditEvery;
        cfg.randomizeBuses = spec.fuzz.randomizeBuses;
        cfg.timeBudgetSeconds = spec.fuzz.seconds;
    }
}

/**
 * Coverage-guided differential fuzzing (verify/fuzzer.hh): generate
 * adversarial traces, check every online invariant plus golden-model and
 * batched-path state equivalence, shrink and persist any failure.
 */
int
cmdFuzz(const std::map<std::string, std::string> &opts)
{
    verify::FuzzConfig cfg;

    if (opts.count("spec"))
        applySpecToFuzz(api::ExperimentSpec::load(opts.at("spec")), cfg);

    // --smoke next: it sets CI-sized defaults that any explicit option
    // below still overrides.
    if (opts.count("smoke")) {
        cfg.rounds = 64;
        cfg.refsPerProc = 2048;
        cfg.timeBudgetSeconds = 20.0;
    }

    if (opts.count("seed")) {
        char *end = nullptr;
        cfg.seed = static_cast<std::uint64_t>(
            std::strtoull(opts.at("seed").c_str(), &end, 0));
        if (end == opts.at("seed").c_str() || *end != '\0')
            fatal("fuzz --seed needs a number, got '" + opts.at("seed") +
                  "'");
    }
    if (opts.count("rounds")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("rounds"), v) || v < 1)
            fatal("fuzz --rounds needs a count >= 1");
        cfg.rounds = v;
    }
    if (opts.count("refs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("refs"), v) || v < 1)
            fatal("fuzz --refs needs a count >= 1");
        cfg.refsPerProc = v;
    }
    if (opts.count("procs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("procs"), v) || v < 2)
            fatal("fuzz --procs needs a count >= 2");
        cfg.system.nprocs = v;
    }
    if (opts.count("buses")) {
        // Pin the interconnect instead of cycling through 1/2/4.
        cfg.system.snoopBuses = busCount(opts, 1);
        cfg.randomizeBuses = false;
    }
    overlayFilterFlag(opts, cfg.system.filterSpecs);
    if (opts.count("seconds")) {
        char *end = nullptr;
        const double v = std::strtod(opts.at("seconds").c_str(), &end);
        if (end == opts.at("seconds").c_str() || *end != '\0' || v < 0)
            fatal("fuzz --seconds needs a non-negative number, got '" +
                  opts.at("seconds") + "'");
        cfg.timeBudgetSeconds = v;
    }
    if (opts.count("audit-every")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("audit-every"), v))
            fatal("fuzz --audit-every needs a count");
        cfg.auditEvery = v;
    }

    // The effective campaign must itself be expressible as a valid
    // spec (the --dump-spec/--spec contract), so flag values the
    // schema would reject fail here with the schema's diagnostic.
    {
        std::string err;
        api::ExperimentSpec::parse(specOfFuzz(cfg).emit(), &err);
        if (!err.empty())
            fatal(err);
    }

    if (!opts.count("repro") && dumpSpecRequested(opts, specOfFuzz(cfg)))
        return 0;

    if (opts.count("repro")) {
        // Replay a persisted repro through the full differential check,
        // on the machine its sidecar recorded — not the default one —
        // so a failure caught under custom filters or geometry cannot
        // falsely replay "clean". Explicit --filters overrides.
        const auto traces = verify::readReproTraces(opts.at("repro"));
        if (traces.size() < 2) {
            fatal("fuzz --repro: '" + opts.at("repro") + "' holds " +
                  std::to_string(traces.size()) +
                  " stream(s); a repro needs one per processor (>= 2)");
        }
        if (opts.count("procs") &&
            cfg.system.nprocs != traces.size()) {
            fatal("fuzz --repro: --procs " +
                  std::to_string(cfg.system.nprocs) +
                  " conflicts with the repro's " +
                  std::to_string(traces.size()) + " streams");
        }
        if (!verify::readReproConfig(opts.at("repro"), cfg.system)) {
            warn("no complete sidecar " + opts.at("repro") +
                 ".json (or legacy .txt); replaying under the default "
                 "configuration");
        }
        // Restore the recorded campaign's fuzz section too (seed and
        // budgets), so the --dump-spec/--json echo records the
        // campaign that caught the failure rather than the defaults.
        // Flags given explicitly on this invocation still win.
        {
            std::string err;
            const json::Value doc =
                json::parseFile(opts.at("repro") + ".json", &err);
            const json::Value *sn =
                err.empty() ? doc.find("spec") : nullptr;
            if (sn) {
                const api::ExperimentSpec sidecar =
                    api::ExperimentSpec::fromJson(*sn, &err);
                if (err.empty() && sidecar.hasFuzz) {
                    if (!opts.count("seed"))
                        cfg.seed = sidecar.fuzz.seed;
                    if (!opts.count("rounds"))
                        cfg.rounds = sidecar.fuzz.rounds;
                    if (!opts.count("refs"))
                        cfg.refsPerProc = sidecar.fuzz.refsPerProc;
                    if (!opts.count("audit-every"))
                        cfg.auditEvery = sidecar.fuzz.auditEvery;
                    if (!opts.count("seconds"))
                        cfg.timeBudgetSeconds = sidecar.fuzz.seconds;
                    cfg.randomizeBuses = sidecar.fuzz.randomizeBuses;
                }
            }
        }
        // Explicit options override what the sidecar restored.
        overlayFilterFlag(opts, cfg.system.filterSpecs);
        if (opts.count("buses"))
            cfg.system.snoopBuses = busCount(opts, 1);
        cfg.system.nprocs = static_cast<unsigned>(traces.size());
        if (dumpSpecRequested(opts, specOfFuzz(cfg)))
            return 0;
        const std::string failure = verify::TraceFuzzer::checkOnce(
            cfg.system, traces, cfg.auditEvery, true, true, nullptr);
        const bool reproduced = !failure.empty();
        if (reproduced) {
            std::printf("repro %s reproduces:\n  %s\n",
                        opts.at("repro").c_str(), failure.c_str());
        } else {
            std::printf("repro %s: clean (%zu streams)\n",
                        opts.at("repro").c_str(), traces.size());
        }
        if (opts.count("json")) {
            api::Report report("fuzz");
            report.echoSpec(specOfFuzz(cfg));
            auto &root = report.root();
            root.set("repro", opts.at("repro"));
            root.set("reproduced", reproduced);
            if (reproduced)
                root.set("failure", failure);
            report.writeFile(opts.at("json"));
            std::printf("wrote %s\n", opts.at("json").c_str());
        }
        return reproduced ? 2 : 0;
    }

    verify::TraceFuzzer fuzzer(cfg);
    const auto result = fuzzer.run();

    std::printf("fuzz: %u rounds, %.2fM refs, coverage %zu/%zu cells "
                "(seed %llu, %u procs, %zu filters)\n",
                result.roundsRun, result.totalRefs / 1e6,
                result.coverage.cellsCovered(),
                result.coverage.cellsTracked(),
                static_cast<unsigned long long>(result.seed),
                cfg.system.nprocs, cfg.system.filterSpecs.size());

    std::string repro_path;
    if (result.failed) {
        std::printf("fuzz: FAILURE in round %u (round seed %llu)\n"
                    "  %s: %s\n"
                    "  shrunk to %llu records\n",
                    result.failingRound,
                    static_cast<unsigned long long>(result.roundSeed),
                    result.invariant.c_str(), result.detail.c_str(),
                    static_cast<unsigned long long>(result.records()));
        repro_path =
            opts.count("out") ? opts.at("out") : std::string("fuzz-repro.jtt");
        // (writeRepro records the failing round's bus count from the
        // result, and embeds the machine + campaign budgets as an
        // ExperimentSpec.)
        verify::writeRepro(repro_path, result, cfg);
        std::printf("  repro written to %s (+ %s.json)\n",
                    repro_path.c_str(), repro_path.c_str());
    } else {
        std::printf("fuzz: no invariant violations, golden and batched "
                    "states bit-exact\n");
    }

    if (opts.count("json")) {
        api::Report report("fuzz");
        report.echoSpec(specOfFuzz(cfg));
        auto &root = report.root();
        root.set("rounds_run", result.roundsRun);
        root.set("total_refs", result.totalRefs);
        json::Value cov = json::Value::object();
        cov.set("cells_covered",
                static_cast<std::uint64_t>(result.coverage.cellsCovered()));
        cov.set("cells_tracked",
                static_cast<std::uint64_t>(result.coverage.cellsTracked()));
        root.set("coverage", std::move(cov));
        root.set("failed", result.failed);
        if (result.failed) {
            root.set("invariant", result.invariant);
            root.set("detail", result.detail);
            root.set("failing_round", result.failingRound);
            root.set("round_seed", result.roundSeed);
            root.set("snoop_buses", result.snoopBuses);
            root.set("records", result.records());
            root.set("repro", repro_path);
        }
        report.writeFile(opts.at("json"));
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return result.failed ? 2 : 0;
}

/** The running daemon, for the signal handler (an atomic pointer store/
 *  load and ExperimentServer::requestStop() are both async-signal-safe). */
std::atomic<service::ExperimentServer *> gServer{nullptr};

extern "C" void
serveSignalHandler(int)
{
    if (auto *server = gServer.load())
        server->requestStop();
}

int
cmdServe(const std::map<std::string, std::string> &opts)
{
    service::ServerConfig cfg;
    if (opts.count("socket"))
        cfg.socketPath = opts.at("socket");
    if (opts.count("jobs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("jobs"), v))
            fatal("--jobs needs a non-negative count, got '" +
                  opts.at("jobs") + "'");
        cfg.jobs = v;
    }
    enableDiskCache(opts);

    service::ExperimentServer server(cfg);
    std::string err = server.start();
    if (!err.empty())
        fatal(err);

    gServer.store(&server);
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    // Flushed eagerly so a scripted caller (CI smoke) that backgrounds
    // the daemon and greps its log sees the ready line immediately.
    std::printf("serving experiments on %s\n", cfg.socketPath.c_str());
    std::fflush(stdout);

    server.run();
    gServer.store(nullptr);
    std::printf("serve: stopped\n");
    return 0;
}

/** The distributed-sweep worker loop over stdin/stdout. Spawned by
 *  `sweep --workers N` (pipes dup2'd onto fds 0/1), but any stream a
 *  caller can land on those fds works — the envelope is
 *  transport-agnostic. JETTY_WORKER_DIE_AFTER=K (fault injection for
 *  the kill tests and the CI smoke) makes the process die mid-shard —
 *  after shard_started, before the response — on the Kth request. */
int
cmdWorker(const std::map<std::string, std::string> &opts)
{
    // The coordinator may vanish while a response is in flight; EPIPE
    // on the write is the recoverable signal, SIGPIPE is not.
    std::signal(SIGPIPE, SIG_IGN);

    dist::WorkerOptions wopts;
    if (opts.count("jobs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("jobs"), v))
            fatal("--jobs needs a non-negative count, got '" +
                  opts.at("jobs") + "'");
        wopts.jobs = v;
    }
    enableDiskCache(opts);

    if (const char *die = std::getenv("JETTY_WORKER_DIE_AFTER");
        die && *die) {
        char *end = nullptr;
        const unsigned long long after = std::strtoull(die, &end, 10);
        if (end == die || *end != '\0' || after == 0)
            fatal(std::string("JETTY_WORKER_DIE_AFTER needs a positive "
                              "request count, got '") + die + "'");
        wopts.faultHook = [after](std::uint64_t received) -> bool {
            if (received >= after) {
                // A hard mid-shard crash as the coordinator sees one:
                // shard_started is on the wire, the response never
                // comes, both pipe ends drop.
                _exit(17);
            }
            return false;
        };
    }

    return dist::runWorkerLoop(0, 1, wopts);
}

int
cmdSubmit(const std::string &specPath,
          const std::map<std::string, std::string> &opts)
{
    const std::string socket =
        opts.count("socket") ? opts.at("socket") : std::string("jetty.sock");

    service::ClientOptions copts;
    if (opts.count("timeout")) {
        const double v = std::atof(opts.at("timeout").c_str());
        if (!std::isfinite(v) || v <= 0)
            fatal("--timeout needs a finite number of seconds > 0, "
                  "got '" + opts.at("timeout") + "'");
        copts.timeoutSeconds = v;
    }
    if (opts.count("retries")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("retries"), v))
            fatal("--retries needs a non-negative count, got '" +
                  opts.at("retries") + "'");
        copts.retries = v;
    }

    if (opts.count("shutdown")) {
        json::Value resp;
        std::string err = service::requestResponse(
            socket, service::makeRequest("shutdown"), resp, copts);
        if (!err.empty())
            fatal(err);
        std::printf("submit: server stopping\n");
        return 0;
    }

    if (specPath.empty())
        fatal("submit needs a spec file: jetty_cli submit SPEC.json "
              "[--socket PATH] [--json FILE] [--timeout S] [--retries N]");
    api::ExperimentSpec spec = api::ExperimentSpec::load(specPath);

    json::Value resp;
    std::string err = service::requestResponse(
        socket, service::makeRunRequest(spec.toJson()), resp, copts);
    if (!err.empty())
        fatal(err);

    const json::Value *ok = resp.find("ok");
    if (!ok || !ok->isBool() || !ok->asBool()) {
        const json::Value *msg = resp.find("error");
        fatal("server error: " + (msg && msg->isString()
                                      ? msg->asString()
                                      : std::string("(malformed response)")));
    }

    const json::Value *kind = resp.find("kind");
    const json::Value *simulated = resp.find("simulated");
    const json::Value *diskHits = resp.find("disk_hits");
    const json::Value *memHits = resp.find("mem_hits");
    std::printf("%s: simulated=%llu disk_hits=%llu mem_hits=%llu\n",
                kind && kind->isString() ? kind->asString().c_str()
                                         : "(unknown)",
                static_cast<unsigned long long>(
                    simulated && simulated->isNumber() ? simulated->asU64()
                                                       : 0),
                static_cast<unsigned long long>(
                    diskHits && diskHits->isNumber() ? diskHits->asU64()
                                                     : 0),
                static_cast<unsigned long long>(
                    memHits && memHits->isNumber() ? memHits->asU64() : 0));

    if (opts.count("json")) {
        const json::Value *report = resp.find("report");
        if (!report)
            fatal("server response carries no report");
        json::writeFile(opts.at("json"), *report);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: jetty_cli run|sweep|apps|filters|"
                             "capture|trace|replay|serve|submit|worker|"
                             "bench|fuzz [options]\n"
                             "       (run/sweep/replay/bench/fuzz accept "
                             "--spec FILE / --dump-spec / --json FILE;\n"
                             "        submit takes a positional SPEC.json)\n");
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "submit") {
        // submit's spec file is positional: jetty_cli submit SPEC.json
        const bool hasPath = argc >= 3 && argv[2][0] != '-';
        const auto opts = parseOptions(argc, argv, hasPath ? 3 : 2);
        return cmdSubmit(hasPath ? argv[2] : "", opts);
    }
    const auto opts = parseOptions(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "sweep")
        return cmdSweep(opts);
    if (cmd == "apps")
        return cmdApps();
    if (cmd == "filters")
        return cmdFilters();
    if (cmd == "capture")
        return cmdCapture(opts);
    if (cmd == "trace")
        return cmdTrace(opts);
    if (cmd == "replay")
        return cmdReplay(opts);
    if (cmd == "serve")
        return cmdServe(opts);
    if (cmd == "worker")
        return cmdWorker(opts);
    if (cmd == "bench")
        return cmdBench(opts);
    if (cmd == "fuzz")
        return cmdFuzz(opts);
    fatal("unknown command '" + cmd + "'");
}
