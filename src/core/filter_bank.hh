/**
 * @file
 * FilterBank: passive, parallel evaluation of many JETTY configurations on
 * one processor's snoop and fill/evict streams.
 *
 * Filtering is observation-only -- a JETTY never changes a coherence
 * outcome, only whether the L2 tag array is probed -- so a single
 * simulation run can score every candidate configuration at once. The bank
 * subscribes to the L2's fill/evict events, receives every snoop with its
 * ground-truth outcome, checks the safety invariant (a filtered snoop must
 * be a true miss), and accumulates per-filter coverage statistics that the
 * energy accountant later combines with per-event filter energies.
 */

#ifndef JETTY_CORE_FILTER_BANK_HH
#define JETTY_CORE_FILTER_BANK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/snoop_filter.hh"
#include "energy/accountant.hh"
#include "mem/cache_events.hh"

namespace jetty::filter
{

/** Coverage statistics of one filter on one processor. */
struct FilterStats
{
    std::uint64_t probes = 0;          //!< snoops presented to the filter
    std::uint64_t filtered = 0;        //!< snoops eliminated
    std::uint64_t wouldMiss = 0;       //!< snoops that miss in the L2
    std::uint64_t filteredWouldMiss = 0;  //!< filtered AND a true miss
    std::uint64_t snoopAllocs = 0;     //!< onSnoopMiss deliveries
    std::uint64_t fillUpdates = 0;     //!< L2 fill events observed
    std::uint64_t evictUpdates = 0;    //!< L2 evict events observed
    std::uint64_t safetyViolations = 0;  //!< must stay zero

    /** Snoop-miss coverage (Section 4.3's key metric). */
    double
    coverage() const
    {
        return wouldMiss == 0
                   ? 0.0
                   : static_cast<double>(filteredWouldMiss) /
                         static_cast<double>(wouldMiss);
    }

    /** Convert to the accountant's traffic view. */
    energy::FilterTraffic
    traffic() const
    {
        energy::FilterTraffic t;
        t.probes = probes;
        t.filtered = filtered;
        t.snoopAllocs = snoopAllocs;
        t.fillUpdates = fillUpdates;
        t.evictUpdates = evictUpdates;
        return t;
    }

    /** Merge another processor's stats for the same configuration. */
    void merge(const FilterStats &o);
};

/**
 * One filter's verdict on one snoop, with the ground truth it was judged
 * against. The verification subsystem's no-false-negative checker hangs
 * off this: `filtered && unitInL2` is the broken-coherence case.
 */
struct FilterProbeEvent
{
    ProcId owner = 0;          //!< node whose bank observed the snoop
    std::size_t filterIdx = 0; //!< index into the bank
    Addr unitAddr = 0;
    bool unitInL2 = false;     //!< ground truth: unit valid in local L2
    bool blockInL2 = false;    //!< ground truth: enclosing tag matched
    bool filtered = false;     //!< the filter claimed "definitely absent"
};

/** Passive observer of every (filter, snoop) verdict. */
class FilterProbeObserver
{
  public:
    virtual ~FilterProbeObserver() = default;
    virtual void onFilterProbe(const FilterProbeEvent &) = 0;
};

/** The bank of simultaneously evaluated filters for one processor. */
class FilterBank : public mem::CacheEventListener
{
  public:
    /**
     * @param specs       configuration names (see filter_spec.hh).
     * @param amap        address-space facts of the simulated system.
     * @param checkSafety verify the "never filter a cached unit" guarantee
     *                    against ground truth (panics on violation when
     *                    true; counts violations either way).
     */
    FilterBank(const std::vector<std::string> &specs, const AddressMap &amap,
               bool checkSafety = true);

    /**
     * Present one snoop to every filter.
     * @param unitAddr   coherence-unit aligned snooped address.
     * @param unitInL2   ground truth: the unit is valid in the local L2.
     * @param blockInL2  ground truth: the enclosing block's tag matched
     *                   (the tag probe reports this for free).
     */
    void observeSnoop(Addr unitAddr, bool unitInL2, bool blockInL2);

    // CacheEventListener
    void unitFilled(Addr unitAddr) override;
    void unitEvicted(Addr unitAddr) override;

    /** Number of filters in the bank. */
    std::size_t size() const { return filters_.size(); }

    /** Filter @p i. */
    SnoopFilter &filterAt(std::size_t i) { return *filters_[i]; }
    const SnoopFilter &filterAt(std::size_t i) const { return *filters_[i]; }

    /** Stats of filter @p i. */
    const FilterStats &statsAt(std::size_t i) const { return stats_[i]; }

    /** Index of the filter whose name() equals @p name, or -1. */
    int indexOf(const std::string &name) const;

    /**
     * Attach (or detach with nullptr) a per-probe observer. @p owner tags
     * the emitted events with the node this bank belongs to. Zero cost
     * when unset: observeSnoop hoists one null check out of its loops.
     */
    void
    setProbeObserver(FilterProbeObserver *obs, ProcId owner)
    {
        probeObserver_ = obs;
        owner_ = owner;
    }

  private:
    std::vector<SnoopFilterPtr> filters_;
    std::vector<FilterStats> stats_;
    bool checkSafety_;
    FilterProbeObserver *probeObserver_ = nullptr;
    ProcId owner_ = 0;
};

} // namespace jetty::filter

#endif // JETTY_CORE_FILTER_BANK_HH
