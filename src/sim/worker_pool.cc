#include "sim/worker_pool.hh"

namespace jetty::sim
{

WorkerPool::WorkerPool(unsigned threads)
    : threads_(threads >= 1 ? threads : 1)
{
    if (threads_ < 2)
        return;
    workers_.reserve(threads_ - 1);
    for (unsigned w = 0; w + 1 < threads_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and the queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
WorkerPool::drain(const std::shared_ptr<ParJob> &job)
{
    const std::size_t n = job->n;
    for (;;) {
        const std::size_t i =
            job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        (*job->fn)(i);
        if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            n) {
            std::lock_guard<std::mutex> lock(job->mu);
            job->done.notify_all();
        }
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<ParJob>();
    job->fn = &fn;
    job->n = n;

    // One helper per worker (no more than useful for n-1 other tasks);
    // each helper and the caller pull indices from the shared counter.
    const std::size_t helpers =
        workers_.size() < n - 1 ? workers_.size() : n - 1;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t h = 0; h < helpers; ++h)
            queue_.push_back([job] { drain(job); });
    }
    cv_.notify_all();

    drain(job);  // the caller participates — never waits idle

    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&job] {
        return job->completed.load(std::memory_order_acquire) == job->n;
    });
}

} // namespace jetty::sim
