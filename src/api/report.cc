#include "api/report.hh"

#include <cstdio>

#include "sim/latency.hh"
#include "trace/trace_file.hh"
#include "util/simd.hh"

namespace jetty::api
{

Report::Report(const std::string &kind)
{
    root_ = json::Value::object();
    root_.set("jetty_report", kVersion);
    root_.set("kind", kind);
    // Kernel provenance: which SIMD tier produced these numbers and at
    // what 64-bit width. Simulated numbers never depend on the tier
    // (util/simd.hh), but committed BENCH_*.json timings do, and
    // bench_compare refuses to call a cross-tier slowdown a regression
    // without this context.
    root_.set("simd_isa", simd::isaName());
    root_.set("simd_width", simd::lanesU64());
}

void
Report::echoSpec(const ExperimentSpec &spec)
{
    root_.set("spec", spec.toJson());
}

void
Report::writeFile(const std::string &path) const
{
    json::writeFile(path, root_);
}

json::Value
Report::archNode(const sim::SimStats &stats)
{
    const auto agg = stats.aggregate();
    json::Value arch = json::Value::object();
    arch.set("accesses", agg.accesses);
    arch.set("reads", agg.reads);
    arch.set("writes", agg.writes);
    arch.set("l1_hits", agg.l1Hits);
    arch.set("l1_misses", agg.l1Misses);
    arch.set("l2_local_accesses", agg.l2LocalAccesses);
    arch.set("l2_local_hits", agg.l2LocalHits);
    arch.set("l2_fills", agg.l2Fills);
    arch.set("bus_reads", agg.busReads);
    arch.set("bus_readxs", agg.busReadXs);
    arch.set("bus_upgrades", agg.busUpgrades);
    arch.set("snoop_transactions", stats.snoopTransactions);
    arch.set("snoop_tag_probes", agg.snoopTagProbes);
    arch.set("snoop_hits", agg.snoopHits);
    arch.set("snoop_misses", agg.snoopMisses);
    arch.set("wb_insertions", agg.wbInsertions);
    arch.set("wb_reclaims", agg.wbReclaims);
    return arch;
}

json::Value
Report::perBusNode(const sim::SimStats &stats)
{
    json::Value buses = json::Value::array();
    for (std::size_t b = 0; b < stats.perBus.size(); ++b) {
        const auto &bus = stats.perBus[b];
        json::Value row = json::Value::object();
        row.set("bus", static_cast<std::uint64_t>(b));
        row.set("transactions", bus.transactions);
        row.set("reads", bus.reads);
        row.set("readxs", bus.readXs);
        row.set("upgrades", bus.upgrades);
        if (b < stats.busSnoopTagProbes.size())
            row.set("snoop_tag_probes", stats.busSnoopTagProbes[b]);
        buses.push(std::move(row));
    }
    return buses;
}

json::Value
Report::timingNode(std::uint64_t refs, double seconds,
                   bool refsTooFewForRate)
{
    json::Value t = json::Value::object();
    t.set("refs", refs);
    t.set("sim_seconds", seconds);
    if (!refsTooFewForRate && seconds > 0)
        t.set("refs_per_sec", static_cast<double>(refs) / seconds);
    else
        t.set("refs_per_sec", json::Value());
    return t;
}

json::Value
Report::ratio(double num, double denom)
{
    return denom > 0 ? json::Value(num / denom) : json::Value();
}

json::Value
Report::runNode(const experiments::AppRunResult &run,
                const experiments::SystemVariant &variant,
                const std::vector<std::string> &specs)
{
    json::Value node = json::Value::object();
    node.set("app", run.appName);
    node.set("abbrev", run.abbrev);

    json::Value m = json::Value::object();
    m.set("procs", variant.nprocs);
    m.set("buses", variant.snoopBuses);
    m.set("subblocked", variant.subblocked);
    node.set("machine", std::move(m));

    node.set("timing", timingNode(run.totalRefs, run.simSeconds,
                                  run.refsTooFewForRate));
    node.set("arch", archNode(run.stats));
    node.set("per_bus", perBusNode(run.stats));

    json::Value filters = json::Value::array();
    for (const auto &spec : specs) {
        const auto &fs = run.statsFor(spec);
        const auto s = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        const auto p = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Parallel);
        const auto lat = sim::evaluateLatency(fs);

        json::Value row = json::Value::object();
        row.set("spec", spec);
        row.set("coverage", fs.coverage());
        json::Value serial = json::Value::object();
        serial.set("snoop_reduction_pct", s.reductionOverSnoopsPct);
        serial.set("all_reduction_pct", s.reductionOverAllPct);
        json::Value parallel = json::Value::object();
        parallel.set("snoop_reduction_pct", p.reductionOverSnoopsPct);
        parallel.set("all_reduction_pct", p.reductionOverAllPct);
        json::Value energyNode = json::Value::object();
        energyNode.set("serial", std::move(serial));
        energyNode.set("parallel", std::move(parallel));
        row.set("energy", std::move(energyNode));
        row.set("mean_snoop_latency_cycles", lat.jettyMeanCycles);
        filters.push(std::move(row));
    }
    node.set("filters", std::move(filters));
    return node;
}

json::Value
Report::traceDigestsNode(const std::vector<std::string> &files)
{
    json::Value arr = json::Value::array();
    for (const auto &file : files) {
        json::Value row = json::Value::object();
        row.set("path", file);
        char digest[32];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(
                          trace::traceFileDigest(file)));
        row.set("digest", digest);
        arr.push(std::move(row));
    }
    return arr;
}

} // namespace jetty::api
