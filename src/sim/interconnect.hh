/**
 * @file
 * Address-interleaved split snoop interconnect.
 *
 * Real SMP servers of the paper's class split the snoop fabric into N
 * logical buses, interleaved by address, so independent transactions
 * proceed in parallel. The functional model here keeps every transaction
 * atomic — the interleave maps each coherence unit to exactly one bus,
 * so all transactions for a unit serialize on its home bus and the
 * coherence outcome is independent of the bus count (asserted against
 * the golden model for snoopBuses in {1, 2, 4}).
 *
 * What the bus count *does* change:
 *  - per-bus occupancy statistics (SimStats::perBus /
 *    busSnoopTagProbes), the input of the latency model's contention
 *    term and the accountant's per-bus snoop energy split;
 *  - the order in which the deferred filter banks replay their snoop
 *    observations (FilterBank::flushDeferred applies queues bus-major),
 *    so per-filter *coverage* may shift with the bus count while the
 *    safety guarantee is untouched (DESIGN.md, "Interconnect & snoop
 *    batching").
 *
 * The interleave granularity is the L2 *block*: every filter-visible
 * structure (EJ/VEJ block entries, IJ block-address slices, sibling
 * subblocks sharing a tag) is block-indexed, so routing whole blocks to
 * one bus keeps each structure's update stream totally ordered. The
 * routing function is busOf(): for a unit address U,
 * bus = (U >> blockOffsetBits) % snoopBuses — deterministic, checked
 * online by the CheckerSuite's bus-routing invariant and offline
 * against GoldenSmp's independently restated interleave.
 */

#ifndef JETTY_SIM_INTERCONNECT_HH
#define JETTY_SIM_INTERCONNECT_HH

#include <cstdint>

#include "util/types.hh"

namespace jetty::sim
{

/** Occupancy counters of one logical snoop bus (SimStats::perBus). */
struct BusStats
{
    std::uint64_t transactions = 0;  //!< transactions routed to this bus
    std::uint64_t reads = 0;         //!< BusRead share
    std::uint64_t readXs = 0;        //!< BusReadX share
    std::uint64_t upgrades = 0;      //!< BusUpgrade share
};

/** The split snoop interconnect's routing fabric: N logical buses,
 *  block-interleaved. Occupancy is counted in SimStats so it travels
 *  with every SweepResult. */
class Interconnect
{
  public:
    /**
     * @param buses           logical snoop buses (>= 1; 1 = the classic
     *                        single shared bus).
     * @param blockOffsetBits log2 of the L2 block size — the interleave
     *                        granularity (see the file comment).
     */
    Interconnect(unsigned buses, unsigned blockOffsetBits);

    /** Number of logical buses. */
    unsigned buses() const { return buses_; }

    /** Home bus of the unit at @p unitAddr. Power-of-two bus counts
     *  (all the sweep points, including the single-bus default) route
     *  with a mask; the modulo stays as the general fallback and both
     *  agree bit-for-bit whenever the mask applies. */
    unsigned
    busOf(Addr unitAddr) const
    {
        const Addr block = unitAddr >> blockOffsetBits_;
        if (busesPow2_)
            return static_cast<unsigned>(block & (buses_ - 1));
        return static_cast<unsigned>(block % buses_);
    }

  private:
    unsigned buses_;
    unsigned blockOffsetBits_;
    bool busesPow2_;
};

} // namespace jetty::sim

#endif // JETTY_SIM_INTERCONNECT_HH
