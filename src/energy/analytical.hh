/**
 * @file
 * The paper's Appendix-A analytical model of snoop-induced miss energy.
 *
 * Given per-access tag (TAG) and data (DATA) energies, a processor count
 * Ncpu, a local L2 hit rate L and a remote hit rate R, the model expresses
 * the energy of snoop-induced tag lookups that miss as a fraction of all L2
 * energy. It drives Figure 2 and the motivation numbers of Section 2.1.
 */

#ifndef JETTY_ENERGY_ANALYTICAL_HH
#define JETTY_ENERGY_ANALYTICAL_HH

#include <cstdint>

#include "energy/cache_energy.hh"

namespace jetty::energy
{

/** Inputs of the Appendix-A model. */
struct AnalyticalParams
{
    /** Energy of one tag-array probe (J). */
    double tagEnergy = 0;

    /** Energy of one data-array access (J). */
    double dataEnergy = 0;

    /** Number of processors in the SMP. */
    unsigned ncpu = 4;
};

/** Breakdown produced by the model for one (L, R) operating point. */
struct AnalyticalResult
{
    double tagSnoopMiss = 0;  //!< energy of snoop-induced tag misses
    double snoopEnergy = 0;   //!< energy of all snoop-induced tag accesses
    double dataEnergy = 0;    //!< energy of all data-array accesses
    double tagAll = 0;        //!< energy of all tag accesses
    double snoopMissFraction = 0;  //!< tagSnoopMiss / (data + tagAll)
};

/**
 * Implements the Appendix-A equations. Per local access:
 *   TagSnoopMiss = TAG * (Ncpu-1) * (1-L) * (1-R)
 *   SnoopE       = TagSnoopMiss + TAG * (Ncpu-1) * (1-L) * R
 *   Data         = DATA * (1 + (Ncpu-1) * (1-L) * R)
 *   TagAll       = SnoopE + TAG * (1 + (1-L))
 *   SnoopMissE   = TagSnoopMiss / (Data + TagAll)
 *
 * The model ignores writebacks and state-bit updates (the detailed
 * simulation accounting in EnergyAccountant includes them).
 */
class AnalyticalSnoopModel
{
  public:
    explicit AnalyticalSnoopModel(const AnalyticalParams &params)
        : params_(params)
    {}

    /** Evaluate the model at local hit rate @p l and remote hit rate @p r,
     *  both in [0, 1]. */
    AnalyticalResult evaluate(double l, double r) const;

    /**
     * Convenience: build the model for a cache organization by deriving
     * TAG/DATA energies from the CacheEnergyModel (serial access, one
     * block read per data access as in Section 2.1's estimate).
     */
    static AnalyticalSnoopModel
    forCache(const CacheGeometry &geom, unsigned ncpu,
             const Technology &tech = Technology::micron180());

  private:
    AnalyticalParams params_;
};

} // namespace jetty::energy

#endif // JETTY_ENERGY_ANALYTICAL_HH
