/**
 * @file
 * Cache-level energy model: maps a cache organization (size, associativity,
 * block/subblock geometry) onto tag-array and data-array per-access
 * energies using the SramArray model, with CACTI-lite bank selection.
 *
 * Modelling choices (documented in DESIGN.md):
 *  - The tag array is latency-critical (it gates the hit/miss decision and
 *    the snoop response window), so its banking is capped low
 *    (@c tagMaxBanks, default 4). The data array of an energy-optimized,
 *    serially-accessed L2 can be banked freely (@c dataMaxBanks).
 *  - A tag access reads all ways of one set: associativity x (tag bits +
 *    per-subblock state bits), followed by comparators on the tag bits.
 *  - A serial data access touches exactly one coherence unit (subblock) of
 *    the matching way. A parallel-mode access reads all ways concurrently.
 */

#ifndef JETTY_ENERGY_CACHE_ENERGY_HH
#define JETTY_ENERGY_CACHE_ENERGY_HH

#include <cstdint>

#include "energy/sram_array.hh"
#include "energy/technology.hh"

namespace jetty::energy
{

/** Structural description of a cache for energy purposes. */
struct CacheGeometry
{
    /** Total data capacity in bytes. */
    std::uint64_t sizeBytes = 1ull << 20;

    /** Set associativity (1 = direct mapped). */
    unsigned assoc = 1;

    /** Address block (tag granularity) in bytes. */
    unsigned blockBytes = 64;

    /** Subblocks per block (coherence units sharing one tag). */
    unsigned subblocks = 2;

    /** Physical address bits (paper: IA-32-like 36, SPARC-like 40). */
    unsigned physAddrBits = 36;

    /** Coherence state bits kept per subblock (MOESI needs 3). */
    unsigned stateBitsPerUnit = 3;

    /**
     * Number of sets. Integer division: only meaningful on a validated
     * geometry (sizeBytes an exact power-of-two multiple of
     * blockBytes * assoc) — validate() enforces exactly that, and
     * CacheEnergyModel refuses unvalidated geometries, so a too-small
     * sizeBytes fails with a descriptive error instead of silently
     * truncating to zero sets and dividing by zero downstream.
     */
    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) * assoc);
    }

    /** Coherence unit (subblock) size in bytes. */
    unsigned unitBytes() const { return blockBytes / subblocks; }

    /** Tag bits stored per block. */
    unsigned tagBits() const;

    /**
     * Check the geometry's internal consistency, fatal()ing with a
     * descriptive message on the first problem: zero fields, a capacity
     * smaller than one full set (the zero-set / silent-truncation
     * trap), a non-power-of-two set count, subblocks not dividing the
     * block, or an address space too small for the index+offset bits.
     * A single-set organization (sizeBytes == blockBytes * assoc) is
     * valid. Called by CacheEnergyModel on construction.
     */
    void validate() const;
};

/** Per-access energies (joules) of one cache. */
struct CacheAccessEnergies
{
    double tagRead = 0;        //!< probe one set's tags + compare
    double tagWrite = 0;       //!< update one way's tag/state
    double dataReadUnit = 0;   //!< read one coherence unit, one way (serial)
    double dataWriteUnit = 0;  //!< write one coherence unit, one way
};

/**
 * Computes and holds the per-access energies of one cache organization.
 */
class CacheEnergyModel
{
  public:
    /**
     * @param geom         cache organization.
     * @param tech         technology point.
     * @param tagMaxBanks  banking cap for the latency-critical tag array.
     * @param dataMaxBanks banking cap for the data array.
     */
    explicit CacheEnergyModel(const CacheGeometry &geom,
                              const Technology &tech = Technology::micron180(),
                              unsigned tagMaxBanks = 4,
                              unsigned dataMaxBanks = 64);

    /** The computed per-access energies. */
    const CacheAccessEnergies &energies() const { return energies_; }

    /** The geometry this model was built for. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Bank counts chosen by the CACTI-lite optimizer. */
    unsigned tagBanks() const { return tagBanks_; }
    unsigned dataBanks() const { return dataBanks_; }

    /** Energy of one parallel-mode lookup's data-side share: all ways of
     *  one unit read concurrently (before the tag compare resolves). */
    double dataReadAllWays() const
    {
        return energies_.dataReadUnit * geom_.assoc;
    }

  private:
    CacheGeometry geom_;
    CacheAccessEnergies energies_;
    unsigned tagBanks_;
    unsigned dataBanks_;
};

} // namespace jetty::energy

#endif // JETTY_ENERGY_CACHE_ENERGY_HH
