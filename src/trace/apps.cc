#include "trace/apps.hh"

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace jetty::trace
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

StreamSpec
privateStream(double weight, std::uint64_t bytes, std::uint64_t resident,
              double residentFrac, double writeFrac, double hotBias = 0.5)
{
    StreamSpec s;
    s.kind = StreamKind::Private;
    s.weight = weight;
    s.bytes = bytes;
    s.residentBytes = resident;
    s.residentFraction = residentFrac;
    s.residentHotBias = hotBias;
    s.writeFraction = writeFrac;
    return s;
}

StreamSpec
pcStream(double weight, std::uint64_t bytes, unsigned epochLen)
{
    StreamSpec s;
    s.kind = StreamKind::ProducerConsumer;
    s.weight = weight;
    s.bytes = bytes;
    s.epochLen = epochLen;
    return s;
}

StreamSpec
migStream(double weight, std::uint64_t bytes, unsigned objectBytes)
{
    StreamSpec s;
    s.kind = StreamKind::Migratory;
    s.weight = weight;
    s.bytes = bytes;
    s.objectBytes = objectBytes;
    return s;
}

StreamSpec
sharedStream(double weight, std::uint64_t bytes, double hotBias)
{
    StreamSpec s;
    s.kind = StreamKind::ReadShared;
    s.weight = weight;
    s.bytes = bytes;
    s.hotBias = hotBias;
    return s;
}

StreamSpec
neighborStream(double weight, std::uint64_t bytes, double remoteFrac,
               std::uint64_t boundary, double writeFrac)
{
    StreamSpec s;
    s.kind = StreamKind::Neighbor;
    s.weight = weight;
    s.bytes = bytes;
    s.remoteFraction = remoteFrac;
    s.boundaryBytes = boundary;
    s.writeFraction = writeFrac;
    return s;
}

AppProfile
base(const std::string &name, const std::string &abbrev, double reuse,
     unsigned wordBytes, std::uint64_t seed)
{
    AppProfile p;
    p.name = name;
    p.abbrev = abbrev;
    p.accessesPerProc = 4'000'000;
    p.reuseProb = reuse;
    p.wordBytes = wordBytes;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<AppProfile>
paperApps()
{
    std::vector<AppProfile> apps;

    // Barnes: N-body tree code. Misses split between private bodies, the
    // widely read-shared tree (multi-copy snoop hits) and some migratory
    // cell updates. Low L2 hit rate, the broadest remote-hit spread.
    {
        AppProfile p = base("Barnes", "ba", 0.88, 4, 101);
        p.streams = {
            privateStream(0.25, 3 * MiB, 160 * KiB, 0.08, 0.30, 0.40),
            sharedStream(0.55, 2 * MiB, 0.65),
            pcStream(0.10, 192 * KiB, 512),
            migStream(0.10, 48 * KiB, 128),
        };
        apps.push_back(p);
    }

    // Cholesky: sparse factorization, dominated by private panels.
    {
        AppProfile p = base("Cholesky", "ch", 0.89, 4, 102);
        p.streams = {
            privateStream(0.92, 2 * MiB, 448 * KiB, 0.31, 0.35, 0.55),
            sharedStream(0.05, 384 * KiB, 0.55),
            pcStream(0.03, 96 * KiB, 512),
        };
        apps.push_back(p);
    }

    // Em3d: streaming graph relaxation over a partitioned mesh with
    // neighbour boundary reads; poor L1 and L2 locality.
    {
        AppProfile p = base("Em3d", "em", 0.31, 8, 103);
        p.streams = {
            neighborStream(0.85, 4 * MiB, 0.16, 48 * KiB, 0.35),
            privateStream(0.15, 2 * MiB, 320 * KiB, 0.20, 0.30, 0.55),
        };
        apps.push_back(p);
    }

    // Fft: bulk private butterflies plus an all-to-all transpose that
    // behaves like pairwise producer/consumer.
    {
        AppProfile p = base("Fft", "ff", 0.73, 4, 104);
        p.streams = {
            privateStream(0.90, 3 * MiB, 48 * KiB, 0.05, 0.40, 0.35),
            pcStream(0.10, 256 * KiB, 512),
        };
        apps.push_back(p);
    }

    // Fmm: excellent locality; mostly private interactions with a small
    // shared boundary.
    {
        AppProfile p = base("Fmm", "fm", 0.984, 4, 105);
        p.streams = {
            privateStream(0.73, 2 * MiB, 384 * KiB, 0.94, 0.30, 0.65),
            pcStream(0.22, 160 * KiB, 512),
            sharedStream(0.05, 256 * KiB, 0.60),
        };
        apps.push_back(p);
    }

    // Lu: blocked factorization; high L2 hit rate, panel broadcast gives
    // a visible single-copy snoop-hit share.
    {
        AppProfile p = base("Lu", "lu", 0.71, 4, 106);
        p.streams = {
            privateStream(0.70, 1536 * KiB, 512 * KiB, 0.80, 0.35, 0.62),
            pcStream(0.30, 192 * KiB, 512),
        };
        apps.push_back(p);
    }

    // Ocean: near-neighbour grid sweeps; moderate locality, almost all
    // snoops miss.
    {
        AppProfile p = base("Ocean", "oc", 0.45, 8, 107);
        p.streams = {
            privateStream(0.60, 1536 * KiB, 512 * KiB, 0.35, 0.35, 0.55),
            neighborStream(0.40, 2 * MiB, 0.035, 32 * KiB, 0.35),
        };
        apps.push_back(p);
    }

    // Radix: permutation writes into large private key arrays; snoops
    // essentially never find remote copies.
    {
        AppProfile p = base("Radix", "ra", 0.76, 4, 108);
        p.streams = {
            privateStream(1.0, 4 * MiB, 640 * KiB, 0.40, 0.50, 0.60),
        };
        apps.push_back(p);
    }

    // Raytrace: a read-only scene that fits in each L2 plus private ray
    // state; misses are private, so snoops miss everywhere.
    {
        AppProfile p = base("Raytrace", "rt", 0.89, 4, 109);
        p.streams = {
            privateStream(1.0, 3 * MiB, 384 * KiB, 0.15, 0.30, 0.55),
        };
        apps.push_back(p);
    }

    // Unstructured: CFD over an irregular mesh; heavy pairwise sharing
    // (edge updates) -- the paper's outlier with most snoops finding one
    // remote copy.
    {
        AppProfile p = base("Unstructured", "un", 0.66, 8, 110);
        p.streams = {
            privateStream(0.34, 1 * MiB, 256 * KiB, 0.94, 0.35, 0.70),
            migStream(0.32, 96 * KiB, 128),
            pcStream(0.30, 128 * KiB, 512),
            sharedStream(0.04, 768 * KiB, 0.45),
        };
        apps.push_back(p);
    }

    return apps;
}

namespace
{

/** The one matching rule behind appByName()/appKnown(): tag or full
 *  name, case-insensitive. @p out (optional) receives the profile. */
bool
findApp(const std::string &name, AppProfile *out)
{
    const std::string key = toUpper(trim(name));
    for (const auto &app : paperApps()) {
        if (toUpper(app.abbrev) == key || toUpper(app.name) == key) {
            if (out)
                *out = app;
            return true;
        }
    }
    return false;
}

} // namespace

AppProfile
appByName(const std::string &name)
{
    AppProfile app;
    if (!findApp(name, &app))
        fatal("appByName: unknown application '" + name + "'");
    return app;
}

bool
appKnown(const std::string &name)
{
    return findApp(name, nullptr);
}

AppProfile
throughputServer()
{
    AppProfile p = base("ThroughputServer", "ts", 0.94, 4, 777);
    // Independent programs: one private stream, nothing shared. Every
    // miss-induced snoop misses in every remote cache.
    p.streams = {
        privateStream(1.0, 3 * MiB, 512 * KiB, 0.55, 0.35, 0.50),
    };
    return p;
}

AppProfile
widelyShared()
{
    AppProfile p = base("WidelyShared", "ws", 0.90, 4, 888);
    // A shared read-mostly region larger than one L2, browsed by all
    // processors: many snoops find multiple remote copies, the worst case
    // for a filter (Section 2's caveat about read-only sharing).
    p.streams = {
        sharedStream(0.85, 3 * MiB, 0.45),
        privateStream(0.15, 1 * MiB, 256 * KiB, 0.50, 0.30, 0.50),
    };
    return p;
}

} // namespace jetty::trace
