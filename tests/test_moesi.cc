/**
 * @file
 * Unit and parameterized tests of the MOESI state machine: every
 * (state, bus-op) snooper transition and every requester fill state.
 */

#include <gtest/gtest.h>

#include "coherence/moesi.hh"

using namespace jetty::coherence;

TEST(Moesi, StateHelpers)
{
    EXPECT_FALSE(isValid(State::Invalid));
    EXPECT_TRUE(isValid(State::Shared));
    EXPECT_TRUE(isValid(State::Modified));

    EXPECT_TRUE(isWritable(State::Modified));
    EXPECT_TRUE(isWritable(State::Exclusive));
    EXPECT_FALSE(isWritable(State::Owned));
    EXPECT_FALSE(isWritable(State::Shared));
    EXPECT_FALSE(isWritable(State::Invalid));

    EXPECT_TRUE(isDirty(State::Modified));
    EXPECT_TRUE(isDirty(State::Owned));
    EXPECT_FALSE(isDirty(State::Exclusive));
    EXPECT_FALSE(isDirty(State::Shared));
}

TEST(Moesi, Names)
{
    EXPECT_STREQ(stateName(State::Modified), "M");
    EXPECT_STREQ(stateName(State::Owned), "O");
    EXPECT_STREQ(stateName(State::Exclusive), "E");
    EXPECT_STREQ(stateName(State::Shared), "S");
    EXPECT_STREQ(stateName(State::Invalid), "I");
    EXPECT_STREQ(busOpName(BusOp::BusRead), "BusRead");
    EXPECT_STREQ(busOpName(BusOp::BusUpgrade), "BusUpgrade");
}

TEST(Moesi, BusReadOnModifiedSuppliesAndOwns)
{
    const auto out = snoopTransition(State::Modified, BusOp::BusRead);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_TRUE(out.supplied);
    EXPECT_EQ(out.next, State::Owned);
}

TEST(Moesi, BusReadOnOwnedSuppliesStaysOwned)
{
    const auto out = snoopTransition(State::Owned, BusOp::BusRead);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_TRUE(out.supplied);
    EXPECT_EQ(out.next, State::Owned);
}

TEST(Moesi, BusReadOnExclusiveSuppliesAndShares)
{
    const auto out = snoopTransition(State::Exclusive, BusOp::BusRead);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_TRUE(out.supplied);
    EXPECT_EQ(out.next, State::Shared);
}

TEST(Moesi, BusReadOnSharedStaysQuiet)
{
    const auto out = snoopTransition(State::Shared, BusOp::BusRead);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_FALSE(out.supplied);
    EXPECT_EQ(out.next, State::Shared);
}

TEST(Moesi, BusReadOnInvalidMisses)
{
    const auto out = snoopTransition(State::Invalid, BusOp::BusRead);
    EXPECT_FALSE(out.hadCopy);
    EXPECT_FALSE(out.supplied);
    EXPECT_EQ(out.next, State::Invalid);
}

/** Every valid state is invalidated by BusReadX; dirty states supply. */
class MoesiReadX : public ::testing::TestWithParam<State>
{
};

TEST_P(MoesiReadX, InvalidatesAll)
{
    const State s = GetParam();
    const auto out = snoopTransition(s, BusOp::BusReadX);
    EXPECT_EQ(out.hadCopy, isValid(s));
    EXPECT_EQ(out.next, State::Invalid);
    EXPECT_EQ(out.supplied, isDirty(s));
}

INSTANTIATE_TEST_SUITE_P(AllStates, MoesiReadX,
                         ::testing::Values(State::Invalid, State::Shared,
                                           State::Exclusive, State::Owned,
                                           State::Modified));

/** Every valid state is invalidated by BusUpgrade without data supply. */
class MoesiUpgrade : public ::testing::TestWithParam<State>
{
};

TEST_P(MoesiUpgrade, InvalidatesWithoutSupply)
{
    const State s = GetParam();
    const auto out = snoopTransition(s, BusOp::BusUpgrade);
    EXPECT_EQ(out.hadCopy, isValid(s));
    EXPECT_EQ(out.next, State::Invalid);
    EXPECT_FALSE(out.supplied);
}

INSTANTIATE_TEST_SUITE_P(AllStates, MoesiUpgrade,
                         ::testing::Values(State::Invalid, State::Shared,
                                           State::Exclusive, State::Owned,
                                           State::Modified));

/** Writebacks never disturb other caches. */
class MoesiWriteback : public ::testing::TestWithParam<State>
{
};

TEST_P(MoesiWriteback, NoEffect)
{
    const State s = GetParam();
    const auto out = snoopTransition(s, BusOp::BusWriteback);
    EXPECT_FALSE(out.hadCopy);
    EXPECT_EQ(out.next, s);
    EXPECT_FALSE(out.supplied);
}

INSTANTIATE_TEST_SUITE_P(AllStates, MoesiWriteback,
                         ::testing::Values(State::Invalid, State::Shared,
                                           State::Exclusive, State::Owned,
                                           State::Modified));

TEST(Moesi, FillStates)
{
    EXPECT_EQ(fillState(BusOp::BusRead, false), State::Exclusive);
    EXPECT_EQ(fillState(BusOp::BusRead, true), State::Shared);
    EXPECT_EQ(fillState(BusOp::BusReadX, false), State::Modified);
    EXPECT_EQ(fillState(BusOp::BusReadX, true), State::Modified);
    EXPECT_EQ(fillState(BusOp::BusUpgrade, true), State::Modified);
}
