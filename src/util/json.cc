#include "util/json.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace jetty::json
{

Value::Value(unsigned long v)
{
    if (v <= static_cast<unsigned long>(
                 std::numeric_limits<std::int64_t>::max())) {
        type_ = Type::Int;
        int_ = static_cast<std::int64_t>(v);
    } else {
        type_ = Type::Uint;
        uint_ = v;
    }
}

Value::Value(unsigned long long v)
{
    if (v <= static_cast<unsigned long long>(
                 std::numeric_limits<std::int64_t>::max())) {
        type_ = Type::Int;
        int_ = static_cast<std::int64_t>(v);
    } else {
        type_ = Type::Uint;
        uint_ = v;
    }
}

namespace
{

// 2^63 and 2^64 are exactly representable doubles; a double d is
// castable to int64 iff -2^63 <= d < 2^63, to uint64 iff 0 <= d < 2^64
// (casting outside those ranges is undefined behaviour, so every cast
// below is guarded by these bounds).
constexpr double kTwoPow63 = 9223372036854775808.0;
constexpr double kTwoPow64 = 18446744073709551616.0;

bool
isIntegralDouble(double d)
{
    return d == d && d >= -kTwoPow64 && d <= kTwoPow64 &&
           d == std::floor(d);
}

} // namespace

bool
Value::isIntegral() const
{
    switch (type_) {
      case Type::Int:
      case Type::Uint:
        return true;
      case Type::Double:
        return isIntegralDouble(dbl_);
      default:
        return false;
    }
}

bool
Value::fitsI64() const
{
    switch (type_) {
      case Type::Int:
        return true;
      case Type::Uint:
        return uint_ <= static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::max());
      case Type::Double:
        return isIntegralDouble(dbl_) && dbl_ >= -kTwoPow63 &&
               dbl_ < kTwoPow63;
      default:
        return false;
    }
}

bool
Value::fitsU64() const
{
    switch (type_) {
      case Type::Int:
        return int_ >= 0;
      case Type::Uint:
        return true;
      case Type::Double:
        return isIntegralDouble(dbl_) && dbl_ >= 0 && dbl_ < kTwoPow64;
      default:
        return false;
    }
}

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        panic("json: asBool on a non-bool value");
    return bool_;
}

std::int64_t
Value::asI64() const
{
    if (!fitsI64())
        panic("json: asI64 on a value outside int64 (callers gate on "
              "fitsI64)");
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        return static_cast<std::int64_t>(uint_);
      default:
        return static_cast<std::int64_t>(dbl_);
    }
}

std::uint64_t
Value::asU64() const
{
    if (!fitsU64())
        panic("json: asU64 on a value outside uint64 (callers gate on "
              "fitsU64)");
    switch (type_) {
      case Type::Int:
        return static_cast<std::uint64_t>(int_);
      case Type::Uint:
        return uint_;
      default:
        return static_cast<std::uint64_t>(dbl_);
    }
}

double
Value::asDouble() const
{
    switch (type_) {
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Double:
        return dbl_;
      default:
        panic("json: asDouble on a non-number");
    }
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        panic("json: asString on a non-string value");
    return str_;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (type_ != Type::Object)
        panic("json: set on a non-object value");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const std::vector<Value::Member> &
Value::members() const
{
    if (type_ != Type::Object)
        panic("json: members on a non-object value");
    return members_;
}

Value &
Value::push(Value v)
{
    if (type_ != Type::Array)
        panic("json: push on a non-array value");
    items_.push_back(std::move(v));
    return *this;
}

const std::vector<Value> &
Value::items() const
{
    if (type_ != Type::Array)
        panic("json: items on a non-array value");
    return items_;
}

std::size_t
Value::size() const
{
    if (type_ == Type::Object)
        return members_.size();
    if (type_ == Type::Array)
        return items_.size();
    return 0;
}

// ---- emission --------------------------------------------------------

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    // Non-finite values are not JSON; the emitters never produce them,
    // so treat one as the internal error it is.
    if (!(v == v) || v > std::numeric_limits<double>::max() ||
        v < std::numeric_limits<double>::lowest()) {
        panic("json: cannot emit a non-finite number");
    }
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // "1e+06"-style output parses back exactly but "1.0" reads better;
    // leave the %g form as-is — it is deterministic, which is what the
    // canonical key needs.
    return buf;
}

void
Value::write(std::string &out, int indent, bool compact,
             bool sortKeys) const
{
    const auto pad = [&out](int depth) {
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Double:
        out += formatDouble(dbl_);
        break;
      case Type::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Type::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            if (!compact) {
                out += '\n';
                pad(indent + 1);
            }
            items_[i].write(out, indent + 1, compact, sortKeys);
        }
        if (!compact) {
            out += '\n';
            pad(indent);
        }
        out += ']';
        break;
      case Type::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        std::vector<const Member *> order;
        order.reserve(members_.size());
        for (const auto &m : members_)
            order.push_back(&m);
        if (sortKeys) {
            std::sort(order.begin(), order.end(),
                      [](const Member *a, const Member *b) {
                          return a->first < b->first;
                      });
        }
        out += '{';
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (i)
                out += ',';
            if (!compact) {
                out += '\n';
                pad(indent + 1);
            }
            out += '"';
            out += escape(order[i]->first);
            out += compact ? "\":" : "\": ";
            order[i]->second.write(out, indent + 1, compact, sortKeys);
        }
        if (!compact) {
            out += '\n';
            pad(indent);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    write(out, 0, false, false);
    out += '\n';
    return out;
}

std::string
Value::dumpCanonical() const
{
    std::string out;
    write(out, 0, true, true);
    return out;
}

std::string
Value::dumpCompact() const
{
    std::string out;
    write(out, 0, true, false);
    return out;
}

// ---- parsing ---------------------------------------------------------

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    Value
    run()
    {
        Value v = parseValue();
        if (failed_)
            return Value();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON value");
            return Value();
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (failed_)
            return;
        failed_ = true;
        if (err_)
            *err_ = "line " + std::to_string(line_) + ": " + what;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Value();
        }
        // Recursion guard: a hostile deeply-nested document must fail
        // with a parse error, not blow the stack. 256 is far beyond any
        // spec/report while keeping worst-case stack use trivial.
        if (depth_ >= kMaxDepth) {
            fail("nesting deeper than " + std::to_string(kMaxDepth) +
                 " levels");
            return Value();
        }
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Value(parseString());
          case 't':
          case 'f':
            return parseKeyword();
          case 'n':
            if (text_.compare(pos_, 4, "null") == 0) {
                pos_ += 4;
                return Value();
            }
            fail("unrecognized keyword");
            return Value();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
            return Value();
        }
    }

    Value
    parseKeyword()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return Value(true);
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return Value(false);
        }
        fail("unrecognized keyword");
        return Value();
    }

    Value
    parseObject()
    {
        ++pos_;  // '{'
        ++depth_;
        Value obj = Value::object();
        skipWs();
        if (consume('}')) {
            --depth_;
            return obj;
        }
        while (!failed_) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected a quoted object key");
                break;
            }
            const std::string key = parseString();
            if (failed_)
                break;
            if (!consume(':')) {
                fail("expected ':' after object key \"" + key + "\"");
                break;
            }
            if (obj.find(key)) {
                fail("duplicate object key \"" + key + "\"");
                break;
            }
            obj.set(key, parseValue());
            if (failed_)
                break;
            if (consume(','))
                continue;
            if (consume('}')) {
                --depth_;
                return obj;
            }
            fail("expected ',' or '}' in object");
        }
        return Value();
    }

    Value
    parseArray()
    {
        ++pos_;  // '['
        ++depth_;
        Value arr = Value::array();
        skipWs();
        if (consume(']')) {
            --depth_;
            return arr;
        }
        while (!failed_) {
            arr.push(parseValue());
            if (failed_)
                break;
            if (consume(','))
                continue;
            if (consume(']')) {
                --depth_;
                return arr;
            }
            fail("expected ',' or ']' in array");
        }
        return Value();
    }

    /** Append @p cp to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        pos_ += 4;
        return true;
    }

    std::string
    parseString()
    {
        ++pos_;  // opening quote
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return "";
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp)) {
                    fail("bad \\u escape in string");
                    return "";
                }
                // Surrogate pair?
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                    text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!parseHex4(lo) || lo < 0xdc00 || lo > 0xdfff) {
                        fail("bad surrogate pair in string");
                        return "";
                    }
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail(std::string("unknown escape '\\") + esc + "'");
                return "";
            }
        }
        fail("unterminated string");
        return "";
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string tok = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        if (integral) {
            if (tok[0] == '-') {
                const long long v = std::strtoll(tok.c_str(), &end, 10);
                if (end == tok.c_str() + tok.size() && errno != ERANGE)
                    return Value(v);
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), &end, 10);
                if (end == tok.c_str() + tok.size() && errno != ERANGE)
                    return Value(v);
            }
            errno = 0;  // overflowed an integer: fall through to double
        }
        end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || errno == ERANGE) {
            fail("malformed number '" + tok + "'");
            return Value();
        }
        return Value(v);
    }

    static constexpr unsigned kMaxDepth = 256;

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
    unsigned depth_ = 0;
    bool failed_ = false;
};

} // namespace

Value
parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return Parser(text, err).run();
}

Value
parseFile(const std::string &path, std::string *err)
{
    if (err)
        err->clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = "cannot open '" + path + "'";
        return Value();
    }
    std::string text;
    char buf[64 * 1024];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        if (err)
            *err = "read error on '" + path + "'";
        return Value();
    }
    return parse(text, err);
}

void
writeFile(const std::string &path, const Value &v)
{
    const std::string why = writeFileErr(path, v);
    if (!why.empty())
        fatal("json: " + why);
}

std::string
writeFileErr(const std::string &path, const Value &v)
{
    return util::writeFileAtomicErr(path, v.dump());
}

} // namespace jetty::json
